"""The synchronous serving facade.

:class:`OptimizerService` keeps the PR-2 thread-blocking API — call
``optimize`` from any thread, get an
:class:`~repro.service.api.OptimizeResponse` back — but it is now a thin
facade over the asyncio-native
:class:`~repro.service.async_service.AsyncOptimizerService`: the facade
owns a background event-loop thread, forwards every request to the async
tier with ``asyncio.run_coroutine_threadsafe``, and blocks the calling
thread on the result.  All serving semantics — sharded cache,
singleflight, deadlines-as-budgets, retry/degradation, admission
control, tenant quotas, warm-start persistence — live in the async tier;
this file only does the thread↔loop plumbing.

``ServiceResult`` and ``ServiceStats`` are re-exported from
:mod:`repro.service.api` (``ServiceResult`` is an alias of
``OptimizeResponse``), so PR-2-era imports keep working.

Migrating to the async tier directly::

    # sync facade (this class)
    with OptimizerService(config) as svc:
        response = svc.optimize(query, timeout=0.5)

    # async tier (new code)
    async with AsyncOptimizerService(config) as svc:
        response = await svc.optimize(OptimizeRequest(query, timeout=0.5))

The responses are identical objects either way.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading

from repro.service.api import (  # noqa: F401  (re-exported compat surface)
    OptimizeRequest,
    OptimizeResponse,
    ServiceResult,
    ServiceStats,
)
from repro.service.async_service import AsyncOptimizerService
from repro.service.cache import PlanCache, ShardedPlanCache
from repro.trace.tracer import Tracer
from repro.util.errors import ValidationError

__all__ = [
    "OptimizerService",
    "OptimizeRequest",
    "OptimizeResponse",
    "ServiceResult",
    "ServiceStats",
]


class OptimizerService:
    """Thread-blocking facade over :class:`AsyncOptimizerService`.

    Args:
        config: An :class:`~repro.config.OptimizerConfig`; ``None`` uses
            the defaults.  See :class:`AsyncOptimizerService` for how
            the service and robustness knobs apply.
        cache: Pre-built plan cache (overrides the config's cache
            sizing) — lets several services share one cache.
        tracer: Observability sink; falls back to ``config.tracer``.

    The facade is safe for concurrent use from many threads and is a
    context manager (``with OptimizerService() as svc: ...``); exit
    drains in-flight work, spills the warm-start file (when configured),
    and stops the background loop.
    """

    def __init__(
        self,
        config=None,
        *,
        cache: PlanCache | ShardedPlanCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        # Build the engine first: config validation errors must raise
        # before any thread is started.
        self._async = AsyncOptimizerService(config, cache=cache, tracer=tracer)
        # One Condition guards the submission gate: `_stopped` flips only
        # while no submission can race it, and close() waits here for
        # `_outstanding` to drain before stopping the loop, so a
        # run_coroutine_threadsafe future can never be stranded behind
        # loop.stop().
        self._gate = threading.Condition()
        self._outstanding = 0
        self._stopped = False
        self._close_lock = threading.Lock()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop,
            name="repro-service-loop",
            daemon=True,
        )
        self._thread.start()

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    # -- public API -----------------------------------------------------

    @property
    def config(self):
        """The engine's :class:`~repro.config.OptimizerConfig`."""
        return self._async.config

    @property
    def cache(self):
        """The engine's plan cache (sharded unless ``cache_shards=1``)."""
        return self._async.cache

    @property
    def tracer(self):
        """The engine's observability sink."""
        return self._async.tracer

    @property
    def timeout(self) -> float | None:
        """The configured default request deadline."""
        return self._async.timeout

    @property
    def fallback_algorithm(self) -> str:
        """The deadline-fallback heuristic in effect."""
        return self._async.fallback_algorithm

    def optimize(
        self,
        request,
        *,
        timeout: float | None = None,
        tenant: str | None = None,
    ) -> OptimizeResponse:
        """Answer one request, blocking the calling thread.

        Accepts an :class:`OptimizeRequest` or a bare query / prepared
        context, exactly like :meth:`AsyncOptimizerService.optimize`;
        ``timeout``/``tenant`` are convenience overrides.  Deadlines,
        degradation, shedding, and provenance behave identically to the
        async tier — this method only hops threads.
        """
        return self._submit(
            self._async.optimize(request, timeout=timeout, tenant=tenant)
        )

    def optimize_batch(
        self, requests, *, timeout: float | None = None
    ) -> list[OptimizeResponse]:
        """Answer a batch (see :meth:`AsyncOptimizerService.optimize_batch`
        for dedup and shared-budget semantics), blocking the caller."""
        requests = list(requests)
        if not requests:
            return []
        return self._submit(
            self._async.optimize_batch(requests, timeout=timeout)
        )

    def invalidate(self) -> int:
        """Drop every cached plan (e.g. after a catalog reload)."""
        return self._async.invalidate()

    def bump_stats_version(self) -> int:
        """Catalog/stats-change hook: lazily invalidate all cached plans."""
        return self._async.bump_stats_version()

    def stats(self) -> ServiceStats:
        """Aggregate service + cache counters."""
        return self._async.stats()

    def close(self, wait: bool = True) -> None:
        """Shut the serving tier down; idempotent.

        Ordering matters: (1) the async engine is closed *on the still-
        running loop* — it refuses new requests, drains in-flight
        optimizations, and spills the warm-start file; (2) the
        submission gate flips to ``stopped`` and waits for every
        outstanding cross-thread call to return; (3) only then is the
        loop stopped and joined, so no submitted coroutine can be
        stranded.  Requests arriving after (or racing) the close observe
        :class:`~repro.util.errors.ValidationError`, never a bare
        ``RuntimeError``.
        """
        with self._close_lock:
            with self._gate:
                if self._stopped:
                    return
            try:
                asyncio.run_coroutine_threadsafe(
                    self._async.close(wait=wait), self._loop
                ).result()
            finally:
                with self._gate:
                    self._stopped = True
                    while self._outstanding:
                        self._gate.wait()
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join()
                self._loop.close()

    def __enter__(self) -> "OptimizerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"OptimizerService(algorithm={self.config.algorithm!r}, "
            f"cache={len(self.cache)}/{self.cache.max_entries}, "
            f"closed={self._stopped})"
        )

    # -- internals ------------------------------------------------------

    def _submit(self, coro):
        """Run ``coro`` on the engine's loop; block for its result.

        The gate makes submission and close mutually safe: a submission
        either lands before ``stopped`` flips (close waits for it to
        drain) or is refused with :class:`ValidationError`.  Loop-side
        refusals (the engine's own closed-check) surface unchanged.
        """
        with self._gate:
            if self._stopped:
                coro.close()
                raise ValidationError("OptimizerService is closed")
            self._outstanding += 1
            future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result()
        except concurrent.futures.CancelledError as exc:
            raise ValidationError("OptimizerService is closed") from exc
        finally:
            with self._gate:
                self._outstanding -= 1
                self._gate.notify_all()
