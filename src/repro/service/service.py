"""The concurrent optimization service.

:class:`OptimizerService` is the serving-loop front end over
:func:`repro.optimize`: requests are fingerprinted
(:mod:`repro.service.fingerprint`), answered from an LRU+TTL plan cache
(:mod:`repro.service.cache`) when possible, deduplicated against
identical in-flight optimizations (*singleflight*), and otherwise run on
a bounded worker pool with a per-request timeout that degrades to a
heuristic plan instead of raising.

Provenance is explicit: every request returns a :class:`ServiceResult`
whose ``source`` says how the plan was produced —

========== ==========================================================
source     meaning
========== ==========================================================
``hit``    served from the plan cache
``miss``   this request ran the optimization (and populated the cache)
``shared`` joined an identical in-flight optimization (singleflight)
``fallback`` the deadline expired; a heuristic plan was returned while
           the exact optimization kept running to warm the cache
========== ==========================================================
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass, field

from repro.enumerate.base import OptimizationResult
from repro.query.context import QueryContext
from repro.query.joingraph import Query
from repro.service.cache import CacheStats, PlanCache
from repro.service.fingerprint import QueryFingerprint, fingerprint_query
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.errors import ValidationError

__all__ = ["OptimizerService", "ServiceResult", "ServiceStats"]

_SOURCES = ("hit", "miss", "shared", "fallback")


@dataclass(frozen=True, slots=True)
class ServiceResult:
    """One answered optimization request, with cache provenance.

    Attributes:
        result: The optimization outcome (exact, cached, or heuristic).
        source: How the plan was produced — ``"hit"``, ``"miss"``,
            ``"shared"``, or ``"fallback"``.
        fingerprint: The request's :class:`QueryFingerprint`.
        elapsed_seconds: Wall-clock service latency for this request,
            including any cache lookups and queueing.
        degraded: True iff the deadline expired and ``result`` carries a
            heuristic plan rather than the exact optimum.
    """

    result: OptimizationResult
    source: str
    fingerprint: QueryFingerprint
    elapsed_seconds: float
    degraded: bool = False

    @property
    def plan(self):
        """The plan tree (shorthand for ``result.plan``)."""
        return self.result.plan

    @property
    def cost(self) -> float:
        """The plan cost (shorthand for ``result.cost``)."""
        return self.result.cost

    def __post_init__(self) -> None:
        if self.source not in _SOURCES:
            raise ValidationError(
                f"unknown provenance {self.source!r}; expected one of "
                f"{_SOURCES}"
            )


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """Aggregate service counters plus per-tier cache snapshots.

    Attributes:
        requests: Requests answered (batch items count individually).
        hits: Requests served from the plan cache.
        optimizations: Exact optimizations actually executed (each one
            corresponds to exactly one distinct missed fingerprint — the
            singleflight guarantee).
        shared: Requests that joined an in-flight optimization.
        fallbacks: Requests degraded to a heuristic plan on deadline.
        plan_cache: The plan tier's :class:`CacheStats`.
        fingerprint_cache: The fingerprint tier's :class:`CacheStats`.
    """

    requests: int
    hits: int
    optimizations: int
    shared: int
    fallbacks: int
    plan_cache: CacheStats
    fingerprint_cache: CacheStats


@dataclass
class _Flight:
    """One in-flight optimization shared by identical requests."""

    future: concurrent.futures.Future
    waiters: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class OptimizerService:
    """Concurrent, cached optimization in front of :func:`repro.optimize`.

    Args:
        config: An :class:`~repro.config.OptimizerConfig`.  Plan-relevant
            fields select the algorithm exactly as :func:`repro.optimize`
            would; the service knobs (``cache_size``, ``cache_ttl``,
            ``service_workers``, ``request_timeout``,
            ``fallback_algorithm``) size this service.  ``None`` uses the
            defaults.
        cache: Pre-built plan :class:`PlanCache` (overrides the config's
            cache sizing) — lets several services share one cache.
        tracer: Observability sink; falls back to ``config.tracer``.
            Cache tiers emit ``cache.*`` counters against it, and the
            service emits ``service.request`` / ``service.fallback``.

    The service is safe for concurrent use from many threads and is a
    context manager (``with OptimizerService() as svc: ...``); exit shuts
    the worker pool down.
    """

    def __init__(
        self,
        config=None,
        *,
        cache: PlanCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        from repro.config import OptimizerConfig

        if config is None:
            config = OptimizerConfig()
        elif not isinstance(config, OptimizerConfig):
            raise ValidationError(
                f"config must be an OptimizerConfig, got "
                f"{type(config).__name__}"
            )
        self.config = config
        self.tracer = (
            tracer if tracer is not None else config.effective_tracer
        )
        self.cache = cache if cache is not None else PlanCache(
            max_entries=config.effective_cache_size,
            ttl_seconds=config.cache_ttl,
            tier="plan",
            tracer=self.tracer,
        )
        self._fingerprints = PlanCache(
            max_entries=config.effective_cache_size,
            tier="fingerprint",
            tracer=self.tracer,
        )
        self.timeout = config.request_timeout
        self.fallback_algorithm = config.effective_fallback_algorithm
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=config.effective_service_workers,
            thread_name_prefix="repro-service",
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}
        self._requests = 0
        self._hits = 0
        self._optimizations = 0
        self._shared = 0
        self._fallbacks = 0
        self._closed = False

    # -- public API -----------------------------------------------------

    def optimize(
        self, query: Query | QueryContext, *, timeout: float | None = None
    ) -> ServiceResult:
        """Answer one request: cache → singleflight → worker pool.

        Args:
            query: A bound query (or prepared context; its query is used).
            timeout: Per-request deadline in seconds, overriding the
                config's ``request_timeout``.  On expiry a heuristic plan
                (``fallback_algorithm``) is returned with
                ``degraded=True`` — never an exception — while the exact
                optimization continues in the background to warm the
                cache.
        """
        start = time.perf_counter()
        query = self._coerce(query)
        fingerprint = self._fingerprint(query)
        source, flight, result = self._lookup_or_launch(query, fingerprint)
        return self._settle(
            query, fingerprint, source, flight, result, start,
            self.timeout if timeout is None else timeout,
        )

    def optimize_batch(
        self, queries, *, timeout: float | None = None
    ) -> list[ServiceResult]:
        """Answer a batch, deduplicating identical members.

        All misses are launched before any result is awaited, so distinct
        queries optimize concurrently on the worker pool and duplicate
        members share one flight.  Results preserve input order.  The
        timeout applies per request.
        """
        staged: list[ServiceResult | tuple] = []
        for query in queries:
            start = time.perf_counter()
            query = self._coerce(query)
            fingerprint = self._fingerprint(query)
            source, flight, result = self._lookup_or_launch(
                query, fingerprint
            )
            if flight is None:
                # Cache hits settle immediately, so their recorded latency
                # is the lookup itself, not the whole batch.
                staged.append(
                    self._settle(
                        query, fingerprint, source, None, result, start, None
                    )
                )
            else:
                staged.append((query, fingerprint, start, source, flight))
        deadline = self.timeout if timeout is None else timeout
        # Misses were all launched above, so they optimize concurrently;
        # each request's latency runs from its own staging time.
        settled: list[ServiceResult] = []
        for item in staged:
            if isinstance(item, ServiceResult):
                settled.append(item)
            else:
                query, fingerprint, start, source, flight = item
                settled.append(
                    self._settle(
                        query, fingerprint, source, flight, None, start,
                        deadline,
                    )
                )
        return settled

    def invalidate(self) -> int:
        """Drop every cached plan (e.g. after a catalog reload)."""
        return self.cache.invalidate()

    def bump_stats_version(self) -> int:
        """Catalog/stats-change hook: lazily invalidate all cached plans."""
        return self.cache.bump_version()

    def stats(self) -> ServiceStats:
        """Aggregate service + cache counters."""
        with self._lock:
            return ServiceStats(
                requests=self._requests,
                hits=self._hits,
                optimizations=self._optimizations,
                shared=self._shared,
                fallbacks=self._fallbacks,
                plan_cache=self.cache.stats(),
                fingerprint_cache=self._fingerprints.stats(),
            )

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down; idempotent."""
        self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "OptimizerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"OptimizerService(algorithm={self.config.algorithm!r}, "
            f"cache={len(self.cache)}/{self.cache.max_entries}, "
            f"inflight={len(self._inflight)})"
        )

    # -- internals ------------------------------------------------------

    @staticmethod
    def _coerce(query) -> Query:
        return query.query if isinstance(query, QueryContext) else query

    def _fingerprint(self, query: Query) -> QueryFingerprint:
        cached = self._fingerprints.get(query)
        if cached is not None:
            return cached
        fingerprint = fingerprint_query(query, self.config)
        self._fingerprints.put(query, fingerprint)
        return fingerprint

    def _lookup_or_launch(self, query, fingerprint):
        """Resolve a request to a hit, a joined flight, or a new flight.

        Returns ``(source, flight, cached_result)``; exactly one of
        ``flight`` / ``cached_result`` is set.  Atomic under the service
        lock: two identical concurrent requests can never both launch.
        """
        if self._closed:
            raise ValidationError("OptimizerService is closed")
        key = fingerprint.key
        with self._lock:
            self._requests += 1
            if self.tracer.enabled:
                self.tracer.counter("service.request")
            cached = self.cache.get(key)
            if cached is not None:
                self._hits += 1
                return "hit", None, cached
            flight = self._inflight.get(key)
            if flight is not None:
                self._shared += 1
                flight.waiters += 1
                return "shared", flight, None
            flight = _Flight(
                future=self._pool.submit(self._run_miss, key, query)
            )
            self._inflight[key] = flight
            self._optimizations += 1
            return "miss", flight, None

    def _run_miss(self, key: str, query: Query) -> OptimizationResult:
        """Worker-pool task: run the exact optimization, warm the cache."""
        from repro import _run

        try:
            result = _run(query, self.config)
            self.cache.put(key, result)
            return result
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    def _settle(
        self, query, fingerprint, source, flight, result, start, timeout
    ) -> ServiceResult:
        """Wait for a staged request's outcome, degrading on deadline."""
        degraded = False
        if flight is not None:
            try:
                result = flight.future.result(timeout)
            except concurrent.futures.TimeoutError:
                result = self._heuristic_fallback(query)
                source, degraded = "fallback", True
                with self._lock:
                    self._fallbacks += 1
                if self.tracer.enabled:
                    self.tracer.counter("service.fallback")
        return ServiceResult(
            result=result,
            source=source,
            fingerprint=fingerprint,
            elapsed_seconds=time.perf_counter() - start,
            degraded=degraded,
        )

    def _heuristic_fallback(self, query: Query) -> OptimizationResult:
        """Produce a valid plan quickly after a missed deadline."""
        from repro.heuristics import HEURISTICS
        from repro.heuristics.goo import GOO

        name = self.fallback_algorithm
        if name == "goo":
            algo = GOO(cross_products=self.config.cross_products)
        else:
            algo = HEURISTICS[name]()
        return algo.optimize(
            query, cost_model=self.config.effective_cost_model
        )
