"""The concurrent optimization service.

:class:`OptimizerService` is the serving-loop front end over
:func:`repro.optimize`: requests are fingerprinted
(:mod:`repro.service.fingerprint`), answered from an LRU+TTL plan cache
(:mod:`repro.service.cache`) when possible, deduplicated against
identical in-flight optimizations (*singleflight*), and otherwise run on
a bounded worker pool with a per-request timeout that degrades to a
heuristic plan instead of raising.

Provenance is explicit: every request returns a :class:`ServiceResult`
whose ``source`` says how the plan was produced —

========== ==========================================================
source     meaning
========== ==========================================================
``hit``    served from the plan cache
``miss``   this request ran the optimization (and populated the cache)
``shared`` joined an identical in-flight optimization (singleflight)
``fallback`` the deadline expired; a heuristic plan was returned while
           the exact optimization kept running to warm the cache
``error``  the optimization failed (worker exception, exhausted retry
           budget); a heuristic plan was returned with the error
           message attached
========== ==========================================================

Failure semantics: a miss that raises is retried up to
``retry_limit`` times with exponential backoff (``retry_backoff``)
before degrading to the heuristic fallback with ``source="error"`` —
the miss caller *and* every singleflight waiter observe the same
degraded outcome; nothing re-raises into callers.  Degraded results
are never cached, so cached plans are always fault-free optima.

Deadlines are true remaining-time budgets: a single request's wait is
``timeout`` minus the time already spent fingerprinting and staging,
and a batch shares one budget measured from batch entry — a batch of N
misses settles in at most ~``timeout``, not N×``timeout``.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from dataclasses import dataclass

from repro.enumerate.base import OptimizationResult
from repro.query.context import QueryContext
from repro.query.joingraph import Query
from repro.service.cache import CacheStats, PlanCache
from repro.service.fingerprint import QueryFingerprint, fingerprint_query
from repro.trace.tracer import Tracer
from repro.util.errors import InjectedFault, ValidationError

__all__ = ["OptimizerService", "ServiceResult", "ServiceStats"]

_SOURCES = ("hit", "miss", "shared", "fallback", "error")


@dataclass(frozen=True, slots=True)
class ServiceResult:
    """One answered optimization request, with cache provenance.

    Attributes:
        result: The optimization outcome (exact, cached, or heuristic).
        source: How the plan was produced — ``"hit"``, ``"miss"``,
            ``"shared"``, ``"fallback"``, or ``"error"``.
        fingerprint: The request's :class:`QueryFingerprint`.
        elapsed_seconds: Wall-clock service latency for this request,
            including any cache lookups and queueing.
        degraded: True iff ``result`` carries a heuristic plan rather
            than the exact optimum (deadline expiry or optimization
            failure).
        error: The failure message when ``source == "error"``; ``None``
            otherwise.
    """

    result: OptimizationResult
    source: str
    fingerprint: QueryFingerprint
    elapsed_seconds: float
    degraded: bool = False
    error: str | None = None

    @property
    def plan(self):
        """The plan tree (shorthand for ``result.plan``)."""
        return self.result.plan

    @property
    def cost(self) -> float:
        """The plan cost (shorthand for ``result.cost``)."""
        return self.result.cost

    def __post_init__(self) -> None:
        if self.source not in _SOURCES:
            raise ValidationError(
                f"unknown provenance {self.source!r}; expected one of "
                f"{_SOURCES}"
            )


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """Aggregate service counters plus per-tier cache snapshots.

    Attributes:
        requests: Requests answered (batch items count individually).
        hits: Requests served from the plan cache.
        optimizations: Exact optimizations actually executed (each one
            corresponds to exactly one distinct missed fingerprint — the
            singleflight guarantee).
        shared: Requests that joined an in-flight optimization.
        fallbacks: Requests degraded to a heuristic plan on deadline.
        errors: Requests degraded because the optimization failed
            (``source == "error"``); singleflight waiters count
            individually, like ``fallbacks``.
        retries: Optimization retry attempts spent recovering from
            worker failures (counted once per attempt, not per waiter).
        plan_cache: The plan tier's :class:`CacheStats`.
        fingerprint_cache: The fingerprint tier's :class:`CacheStats`.
    """

    requests: int
    hits: int
    optimizations: int
    shared: int
    fallbacks: int
    errors: int
    retries: int
    plan_cache: CacheStats
    fingerprint_cache: CacheStats


@dataclass(frozen=True, slots=True)
class _MissOutcome:
    """What one worker-pool optimization produced.

    The miss task never raises into its future; failures surface as a
    fallback ``result`` plus the ``error`` message, so the miss caller
    and every singleflight waiter settle through one code path.
    """

    result: OptimizationResult
    error: str | None = None


class OptimizerService:
    """Concurrent, cached optimization in front of :func:`repro.optimize`.

    Args:
        config: An :class:`~repro.config.OptimizerConfig`.  Plan-relevant
            fields select the algorithm exactly as :func:`repro.optimize`
            would; the service knobs (``cache_size``, ``cache_ttl``,
            ``service_workers``, ``request_timeout``,
            ``fallback_algorithm``) size this service, and the
            robustness knobs (``retry_limit``, ``retry_backoff``,
            ``fault_plan``) govern failure handling.  ``None`` uses the
            defaults.
        cache: Pre-built plan :class:`PlanCache` (overrides the config's
            cache sizing) — lets several services share one cache.
        tracer: Observability sink; falls back to ``config.tracer``.
            Cache tiers emit ``cache.*`` counters against it, and the
            service emits ``service.request`` / ``service.fallback`` /
            ``service.error`` / ``service.retry`` /
            ``service.cache_error``.

    The service is safe for concurrent use from many threads and is a
    context manager (``with OptimizerService() as svc: ...``); exit shuts
    the worker pool down.
    """

    def __init__(
        self,
        config=None,
        *,
        cache: PlanCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        from repro.config import OptimizerConfig

        if config is None:
            config = OptimizerConfig()
        elif not isinstance(config, OptimizerConfig):
            raise ValidationError(
                f"config must be an OptimizerConfig, got "
                f"{type(config).__name__}"
            )
        self.config = config
        self.tracer = (
            tracer if tracer is not None else config.effective_tracer
        )
        self._injector = config.effective_fault_injector
        self._retry_limit = config.effective_retry_limit
        self._retry_backoff = config.effective_retry_backoff
        self.cache = cache if cache is not None else PlanCache(
            max_entries=config.effective_cache_size,
            ttl_seconds=config.cache_ttl,
            tier="plan",
            tracer=self.tracer,
            injector=self._injector,
        )
        self._fingerprints = PlanCache(
            max_entries=config.effective_cache_size,
            tier="fingerprint",
            tracer=self.tracer,
            injector=self._injector,
        )
        self.timeout = config.request_timeout
        self.fallback_algorithm = config.effective_fallback_algorithm
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=config.effective_service_workers,
            thread_name_prefix="repro-service",
        )
        self._lock = threading.Lock()
        self._inflight: dict[str, concurrent.futures.Future] = {}
        self._requests = 0
        self._hits = 0
        self._optimizations = 0
        self._shared = 0
        self._fallbacks = 0
        self._errors = 0
        self._retries = 0
        self._closed = False

    # -- public API -----------------------------------------------------

    def optimize(
        self, query: Query | QueryContext, *, timeout: float | None = None
    ) -> ServiceResult:
        """Answer one request: cache → singleflight → worker pool.

        Args:
            query: A bound query (or prepared context; its query is used).
            timeout: Per-request deadline in seconds, overriding the
                config's ``request_timeout``.  The deadline is measured
                from request entry (fingerprinting and staging spend it
                too).  On expiry a heuristic plan
                (``fallback_algorithm``) is returned with
                ``degraded=True`` — never an exception — while the exact
                optimization continues in the background to warm the
                cache.
        """
        start = time.perf_counter()
        query = self._coerce(query)
        fingerprint = self._fingerprint(query)
        source, future, result = self._lookup_or_launch(query, fingerprint)
        deadline = self.timeout if timeout is None else timeout
        if deadline is not None:
            deadline = max(0.0, deadline - (time.perf_counter() - start))
        return self._settle(
            query, fingerprint, source, future, result, start, deadline
        )

    def optimize_batch(
        self, queries, *, timeout: float | None = None
    ) -> list[ServiceResult]:
        """Answer a batch, deduplicating identical members.

        All misses are launched before any result is awaited, so distinct
        queries optimize concurrently on the worker pool and duplicate
        members share one flight.  Results preserve input order.  The
        timeout is one *shared* budget measured from batch entry: each
        item waits only the budget remaining when its turn to settle
        comes, so a batch of N misses settles in at most ~``timeout``
        total (plus one fallback computation per expired item), never
        N×``timeout``.
        """
        batch_start = time.perf_counter()
        staged: list[ServiceResult | tuple] = []
        for query in queries:
            start = time.perf_counter()
            query = self._coerce(query)
            fingerprint = self._fingerprint(query)
            source, future, result = self._lookup_or_launch(
                query, fingerprint
            )
            if future is None:
                # Cache hits settle immediately, so their recorded latency
                # is the lookup itself, not the whole batch.
                staged.append(
                    self._settle(
                        query, fingerprint, source, None, result, start, None
                    )
                )
            else:
                staged.append((query, fingerprint, start, source, future))
        deadline = self.timeout if timeout is None else timeout
        # Misses were all launched above, so they optimize concurrently;
        # each request's latency runs from its own staging time while the
        # deadline budget runs from batch entry.
        settled: list[ServiceResult] = []
        for item in staged:
            if isinstance(item, ServiceResult):
                settled.append(item)
            else:
                query, fingerprint, start, source, future = item
                remaining = None
                if deadline is not None:
                    remaining = max(
                        0.0,
                        deadline - (time.perf_counter() - batch_start),
                    )
                settled.append(
                    self._settle(
                        query, fingerprint, source, future, None, start,
                        remaining,
                    )
                )
        return settled

    def invalidate(self) -> int:
        """Drop every cached plan (e.g. after a catalog reload)."""
        return self.cache.invalidate()

    def bump_stats_version(self) -> int:
        """Catalog/stats-change hook: lazily invalidate all cached plans."""
        return self.cache.bump_version()

    def stats(self) -> ServiceStats:
        """Aggregate service + cache counters."""
        with self._lock:
            return ServiceStats(
                requests=self._requests,
                hits=self._hits,
                optimizations=self._optimizations,
                shared=self._shared,
                fallbacks=self._fallbacks,
                errors=self._errors,
                retries=self._retries,
                plan_cache=self.cache.stats(),
                fingerprint_cache=self._fingerprints.stats(),
            )

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down; idempotent.

        The closed flag is set under the service lock so a request that
        already passed its closed-check settles normally; requests
        arriving after are rejected with
        :class:`~repro.util.errors.ValidationError`.  The pool shutdown
        itself happens outside the lock (miss tasks take the lock to
        deregister, so holding it while waiting would deadlock).
        """
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "OptimizerService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"OptimizerService(algorithm={self.config.algorithm!r}, "
            f"cache={len(self.cache)}/{self.cache.max_entries}, "
            f"inflight={len(self._inflight)})"
        )

    # -- internals ------------------------------------------------------

    @staticmethod
    def _coerce(query) -> Query:
        return query.query if isinstance(query, QueryContext) else query

    def _fingerprint(self, query: Query) -> QueryFingerprint:
        cached = self._cache_get(self._fingerprints, query)
        if cached is not None:
            return cached
        fingerprint = fingerprint_query(query, self.config)
        self._cache_put(self._fingerprints, query, fingerprint)
        return fingerprint

    def _cache_get(self, cache: PlanCache, key):
        """Cache lookup that absorbs injected cache faults.

        Fail-open: a faulting cache tier is served as a miss (counted as
        ``service.cache_error``), never an exception to the caller.  May
        run with the service lock held, so it must not take it.
        """
        try:
            return cache.get(key)
        except InjectedFault:
            if self.tracer.enabled:
                self.tracer.counter("service.cache_error", tier=cache.tier)
            return None

    def _cache_put(self, cache: PlanCache, key, value) -> None:
        """Cache insert that absorbs injected cache faults (fail-open)."""
        try:
            cache.put(key, value)
        except InjectedFault:
            if self.tracer.enabled:
                self.tracer.counter("service.cache_error", tier=cache.tier)

    def _lookup_or_launch(self, query, fingerprint):
        """Resolve a request to a hit, a joined flight, or a new flight.

        Returns ``(source, future, cached_result)``; exactly one of
        ``future`` / ``cached_result`` is set.  Atomic under the service
        lock: two identical concurrent requests can never both launch,
        and the closed-check races with :meth:`close` under the same
        lock (a post-shutdown submit is translated to
        :class:`ValidationError` rather than leaking the pool's bare
        ``RuntimeError``).
        """
        key = fingerprint.key
        with self._lock:
            if self._closed:
                raise ValidationError("OptimizerService is closed")
            self._requests += 1
            if self.tracer.enabled:
                self.tracer.counter("service.request")
            cached = self._cache_get(self.cache, key)
            if cached is not None:
                self._hits += 1
                return "hit", None, cached
            future = self._inflight.get(key)
            if future is not None:
                self._shared += 1
                return "shared", future, None
            try:
                future = self._pool.submit(self._run_miss, key, query)
            except RuntimeError as exc:
                raise ValidationError(
                    "OptimizerService is closed"
                ) from exc
            self._inflight[key] = future
            self._optimizations += 1
            return "miss", future, None

    def _run_miss(self, key: str, query: Query) -> _MissOutcome:
        """Worker-pool task: run the exact optimization, warm the cache.

        Failures retry up to ``retry_limit`` times with exponential
        backoff; an exhausted budget degrades to the heuristic fallback
        with the error attached instead of raising, so singleflight
        waiters never see a raw exception.  Only fault-free optima are
        cached.
        """
        from repro import _run

        try:
            last: Exception | None = None
            for attempt in range(self._retry_limit + 1):
                if attempt:
                    with self._lock:
                        self._retries += 1
                    if self.tracer.enabled:
                        self.tracer.counter("service.retry")
                    if self._retry_backoff:
                        time.sleep(
                            self._retry_backoff * (2 ** (attempt - 1))
                        )
                try:
                    if self._injector.enabled:
                        self._injector.check(
                            "service", phase="miss", attempt=attempt + 1
                        )
                    result = _run(query, self.config)
                except Exception as exc:
                    last = exc
                    continue
                self._cache_put(self.cache, key, result)
                return _MissOutcome(result=result)
            return _MissOutcome(
                result=self._heuristic_fallback(query),
                error=f"{type(last).__name__}: {last}",
            )
        finally:
            with self._lock:
                self._inflight.pop(key, None)

    def _settle(
        self, query, fingerprint, source, future, result, start, timeout
    ) -> ServiceResult:
        """Wait for a staged request's outcome, degrading on deadline or
        failure (each singleflight waiter settles — and is counted —
        independently)."""
        degraded = False
        error: str | None = None
        if future is not None:
            try:
                outcome = future.result(timeout)
            except concurrent.futures.TimeoutError:
                result = self._heuristic_fallback(query)
                source, degraded = "fallback", True
                with self._lock:
                    self._fallbacks += 1
                if self.tracer.enabled:
                    self.tracer.counter("service.fallback")
            except Exception as exc:
                # Defensive: the miss task reports failures through its
                # _MissOutcome, so a raw exception here means something
                # outside the retry loop broke (e.g. a cancelled future
                # during shutdown).  Degrade rather than propagate.
                result = self._heuristic_fallback(query)
                source, degraded = "error", True
                error = f"{type(exc).__name__}: {exc}"
                with self._lock:
                    self._errors += 1
                if self.tracer.enabled:
                    self.tracer.counter("service.error")
            else:
                result = outcome.result
                if outcome.error is not None:
                    source, degraded, error = "error", True, outcome.error
                    with self._lock:
                        self._errors += 1
                    if self.tracer.enabled:
                        self.tracer.counter("service.error")
        return ServiceResult(
            result=result,
            source=source,
            fingerprint=fingerprint,
            elapsed_seconds=time.perf_counter() - start,
            degraded=degraded,
            error=error,
        )

    def _heuristic_fallback(self, query: Query) -> OptimizationResult:
        """Produce a valid plan quickly after a missed deadline."""
        from repro.heuristics import HEURISTICS
        from repro.heuristics.goo import GOO

        name = self.fallback_algorithm
        if name == "goo":
            algo = GOO(cross_products=self.config.cross_products)
        else:
            algo = HEURISTICS[name]()
        return algo.optimize(
            query, cost_model=self.config.effective_cost_model
        )
