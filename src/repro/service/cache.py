"""Thread-safe LRU + TTL plan cache.

:class:`PlanCache` maps fingerprint keys to cached values (the service
stores :class:`~repro.enumerate.base.OptimizationResult`\\ s) under three
independent expiry mechanisms:

* **LRU capacity** — at most ``max_entries`` live entries; inserting past
  the cap evicts the least-recently-used entry.
* **TTL** — entries older than ``ttl_seconds`` are dropped on access
  (lazy expiry; no background thread).
* **Version invalidation** — the cache carries a monotonically increasing
  *catalog/stats version*; :meth:`bump_version` (the invalidation hook to
  call when catalog statistics change) makes every earlier entry stale
  without touching the map eagerly.

Every outcome is counted (:class:`CacheStats`) and, when a tracer is
attached, emitted as ``cache.*`` counters tagged with the cache's *tier*
so ``repro trace`` can render a per-cache-tier table.

>>> cache = PlanCache(max_entries=2)
>>> cache.put("a", 1); cache.put("b", 2)
>>> cache.get("a")
1
>>> cache.put("c", 3)        # evicts "b" — least recently used
>>> cache.get("b") is None
True
>>> cache.stats().evictions
1
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.faults import NULL_INJECTOR
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.errors import ValidationError

__all__ = ["CacheStats", "PlanCache"]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Point-in-time counter snapshot for one cache tier.

    Attributes:
        tier: The cache's tier label (``"plan"``, ``"fingerprint"``, …).
        hits: Lookups served from a live entry.
        misses: Lookups that found nothing usable (includes stale and
            invalidated lookups).
        evictions: Entries dropped by the LRU capacity bound.
        stale: Lookups that found an entry past its TTL.
        invalidated: Lookups that found an entry from an older
            catalog/stats version, plus entries dropped by
            :meth:`PlanCache.invalidate`.
        entries: Entries currently resident.
    """

    tier: str
    hits: int
    misses: int
    evictions: int
    stale: int
    invalidated: int
    entries: int

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    __slots__ = ("value", "stamp", "version")

    def __init__(self, value: Any, stamp: float, version: int) -> None:
        self.value = value
        self.stamp = stamp
        self.version = version


class PlanCache:
    """Size-capped, TTL-aware, version-aware LRU cache (thread-safe).

    Args:
        max_entries: LRU capacity; must be >= 1.
        ttl_seconds: Per-entry time-to-live; ``None`` disables expiry.
        tier: Label stamped on stats and trace counters.
        tracer: Observability sink; ``cache.hit`` / ``cache.miss`` /
            ``cache.eviction`` / ``cache.stale`` / ``cache.invalidated``
            counters are emitted with ``tier=<tier>`` when enabled.
        clock: Monotonic time source (injectable for tests).
        injector: Optional :class:`~repro.faults.FaultInjector`; when
            enabled, ``get``/``put`` consult the ``cache`` fault site
            (coordinates ``op`` and ``tier``) before touching the map,
            so chaos tests can exercise a flaky cache tier.  Raised
            :class:`~repro.util.errors.InjectedFault`\\ s escape to the
            caller (the service fails open and treats them as misses).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: float | None = None,
        tier: str = "plan",
        tracer: Tracer | None = None,
        clock: Callable[[], float] = time.monotonic,
        injector=None,
    ) -> None:
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValidationError(
                f"ttl_seconds must be positive, got {ttl_seconds}"
            )
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.tier = tier
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[Any, _Entry] = OrderedDict()
        self._version = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stale = 0
        self._invalidated = 0

    # -- core operations ------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Look up ``key``; refreshes LRU recency on a hit.

        Entries past their TTL or from an older catalog/stats version are
        dropped and counted (``stale`` / ``invalidated``) in addition to
        the miss.
        """
        if self._injector.enabled:
            self._injector.check("cache", op="get", tier=self.tier)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._emit("cache.miss")
                return default
            if entry.version != self._version:
                del self._entries[key]
                self._invalidated += 1
                self._misses += 1
                self._emit("cache.invalidated")
                self._emit("cache.miss")
                return default
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.stamp > self.ttl_seconds
            ):
                del self._entries[key]
                self._stale += 1
                self._misses += 1
                self._emit("cache.stale")
                self._emit("cache.miss")
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            self._emit("cache.hit")
            return entry.value

    def put(self, key: Any, value: Any) -> None:
        """Insert or refresh ``key``, evicting LRU entries past capacity."""
        if self._injector.enabled:
            self._injector.check("cache", op="put", tier=self.tier)
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = _Entry(value, self._clock(), self._version)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._emit("cache.eviction")

    def invalidate(self, key: Any = None) -> int:
        """Drop one entry (or all, when ``key`` is ``None``); returns the
        number of entries removed."""
        with self._lock:
            if key is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                dropped = 1 if self._entries.pop(key, None) is not None else 0
            if dropped:
                self._invalidated += dropped
                self._emit("cache.invalidated", dropped)
            return dropped

    def bump_version(self) -> int:
        """Catalog/stats invalidation hook: mark every current entry stale.

        Call when the statistics the cached plans were optimized against
        change.  Entries are dropped lazily on their next lookup; returns
        the new version number.
        """
        with self._lock:
            self._version += 1
            return self._version

    @property
    def version(self) -> int:
        """Current catalog/stats version (read under the cache lock, so
        it is always consistent with concurrent :meth:`bump_version`
        calls)."""
        with self._lock:
            return self._version

    # -- introspection --------------------------------------------------

    def stats(self) -> CacheStats:
        """Snapshot of the cache's counters."""
        with self._lock:
            return CacheStats(
                tier=self.tier,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                stale=self._stale,
                invalidated=self._invalidated,
                entries=len(self._entries),
            )

    def keys(self) -> list:
        """Resident keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.version != self._version:
                return False
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.stamp > self.ttl_seconds
            ):
                return False
            return True

    def __repr__(self) -> str:
        return (
            f"PlanCache(tier={self.tier!r}, entries={len(self._entries)}/"
            f"{self.max_entries}, ttl={self.ttl_seconds})"
        )

    # -- internals ------------------------------------------------------

    def _emit(self, name: str, value: int = 1) -> None:
        # Called with the lock held; RecordingTracer uses its own lock and
        # never calls back into the cache, so this cannot deadlock.
        if self.tracer.enabled:
            self.tracer.counter(name, value, tier=self.tier)
