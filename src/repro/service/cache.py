"""Thread-safe LRU + TTL plan cache.

:class:`PlanCache` maps fingerprint keys to cached values (the service
stores :class:`~repro.enumerate.base.OptimizationResult`\\ s) under three
independent expiry mechanisms:

* **LRU capacity** — at most ``max_entries`` live entries; inserting past
  the cap evicts the least-recently-used entry.
* **TTL** — entries older than ``ttl_seconds`` are dropped on access
  (lazy expiry; no background thread).
* **Version invalidation** — the cache carries a monotonically increasing
  *catalog/stats version*; :meth:`bump_version` (the invalidation hook to
  call when catalog statistics change) makes every earlier entry stale
  without touching the map eagerly.

Every outcome is counted (:class:`CacheStats`) and, when a tracer is
attached, emitted as ``cache.*`` counters tagged with the cache's *tier*
so ``repro trace`` can render a per-cache-tier table.

>>> cache = PlanCache(max_entries=2)
>>> cache.put("a", 1); cache.put("b", 2)
>>> cache.get("a")
1
>>> cache.put("c", 3)        # evicts "b" — least recently used
>>> cache.get("b") is None
True
>>> cache.stats().evictions
1

:class:`ShardedPlanCache` spreads the same contract over N
independently-locked :class:`PlanCache` shards, routed by a stable hash
of the key, so concurrent serving traffic does not serialize on one
lock:

>>> sharded = ShardedPlanCache(shards=4, max_entries=64)
>>> sharded.put("a", 1)
>>> sharded.get("a")
1
>>> sharded.shard_of("a") == sharded.shard_of("a")   # routing is stable
True
"""

from __future__ import annotations

import hashlib
import math
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable

from repro.faults import NULL_INJECTOR
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.errors import ValidationError

__all__ = ["CacheStats", "PlanCache", "ShardedPlanCache", "shard_index"]


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Point-in-time counter snapshot for one cache tier.

    Attributes:
        tier: The cache's tier label (``"plan"``, ``"fingerprint"``, …).
        hits: Lookups served from a live entry.
        misses: Lookups that found nothing usable (includes stale and
            invalidated lookups).
        evictions: Entries dropped by the LRU capacity bound.
        stale: Lookups that found an entry past its TTL.
        invalidated: Lookups that found an entry from an older
            catalog/stats version, plus entries dropped by
            :meth:`PlanCache.invalidate`.
        entries: Entries currently resident.
    """

    tier: str
    hits: int
    misses: int
    evictions: int
    stale: int
    invalidated: int
    entries: int

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when no lookups yet)."""
        return self.hits / self.lookups if self.lookups else 0.0


class _Entry:
    __slots__ = ("value", "stamp", "version")

    def __init__(self, value: Any, stamp: float, version: int) -> None:
        self.value = value
        self.stamp = stamp
        self.version = version


class PlanCache:
    """Size-capped, TTL-aware, version-aware LRU cache (thread-safe).

    Args:
        max_entries: LRU capacity; must be >= 1.
        ttl_seconds: Per-entry time-to-live; ``None`` disables expiry.
        tier: Label stamped on stats and trace counters.
        tracer: Observability sink; ``cache.hit`` / ``cache.miss`` /
            ``cache.eviction`` / ``cache.stale`` / ``cache.invalidated``
            counters are emitted with ``tier=<tier>`` when enabled.
        clock: Monotonic time source (injectable for tests).
        injector: Optional :class:`~repro.faults.FaultInjector`; when
            enabled, ``get``/``put`` consult the ``cache`` fault site
            (coordinates ``op`` and ``tier``) before touching the map,
            so chaos tests can exercise a flaky cache tier.  Raised
            :class:`~repro.util.errors.InjectedFault`\\ s escape to the
            caller (the service fails open and treats them as misses).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: float | None = None,
        tier: str = "plan",
        tracer: Tracer | None = None,
        clock: Callable[[], float] = time.monotonic,
        injector=None,
    ) -> None:
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValidationError(
                f"ttl_seconds must be positive, got {ttl_seconds}"
            )
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.tier = tier
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._injector = injector if injector is not None else NULL_INJECTOR
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[Any, _Entry] = OrderedDict()
        self._version = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._stale = 0
        self._invalidated = 0

    # -- core operations ------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Look up ``key``; refreshes LRU recency on a hit.

        Entries past their TTL or from an older catalog/stats version are
        dropped and counted (``stale`` / ``invalidated``) in addition to
        the miss.
        """
        if self._injector.enabled:
            self._injector.check("cache", op="get", tier=self.tier)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                self._emit("cache.miss")
                return default
            if entry.version != self._version:
                del self._entries[key]
                self._invalidated += 1
                self._misses += 1
                self._emit("cache.invalidated")
                self._emit("cache.miss")
                return default
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.stamp > self.ttl_seconds
            ):
                del self._entries[key]
                self._stale += 1
                self._misses += 1
                self._emit("cache.stale")
                self._emit("cache.miss")
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            self._emit("cache.hit")
            return entry.value

    def put(self, key: Any, value: Any) -> None:
        """Insert or refresh ``key``, evicting LRU entries past capacity."""
        if self._injector.enabled:
            self._injector.check("cache", op="put", tier=self.tier)
        with self._lock:
            if key in self._entries:
                del self._entries[key]
            self._entries[key] = _Entry(value, self._clock(), self._version)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
                self._emit("cache.eviction")

    def invalidate(self, key: Any = None) -> int:
        """Drop one entry (or all, when ``key`` is ``None``); returns the
        number of entries removed."""
        with self._lock:
            if key is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                dropped = 1 if self._entries.pop(key, None) is not None else 0
            if dropped:
                self._invalidated += dropped
                self._emit("cache.invalidated", dropped)
            return dropped

    def bump_version(self) -> int:
        """Catalog/stats invalidation hook: mark every current entry stale.

        Call when the statistics the cached plans were optimized against
        change.  Entries are dropped lazily on their next lookup; returns
        the new version number.
        """
        with self._lock:
            self._version += 1
            return self._version

    @property
    def version(self) -> int:
        """Current catalog/stats version (read under the cache lock, so
        it is always consistent with concurrent :meth:`bump_version`
        calls)."""
        with self._lock:
            return self._version

    # -- introspection --------------------------------------------------

    def stats(self) -> CacheStats:
        """Snapshot of the cache's counters."""
        with self._lock:
            return CacheStats(
                tier=self.tier,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                stale=self._stale,
                invalidated=self._invalidated,
                entries=len(self._entries),
            )

    def keys(self) -> list:
        """Resident keys, least- to most-recently used."""
        with self._lock:
            return list(self._entries)

    def items(self) -> list[tuple[Any, Any]]:
        """Live ``(key, value)`` pairs, least- to most-recently used.

        Entries past their TTL or from an older catalog/stats version are
        skipped (but, unlike :meth:`get`, not dropped or counted — this is
        a read-only snapshot used by warm-start persistence)."""
        with self._lock:
            now = self._clock()
            return [
                (key, entry.value)
                for key, entry in self._entries.items()
                if entry.version == self._version
                and (
                    self.ttl_seconds is None
                    or now - entry.stamp <= self.ttl_seconds
                )
            ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or entry.version != self._version:
                return False
            if (
                self.ttl_seconds is not None
                and self._clock() - entry.stamp > self.ttl_seconds
            ):
                return False
            return True

    def __repr__(self) -> str:
        return (
            f"PlanCache(tier={self.tier!r}, entries={len(self._entries)}/"
            f"{self.max_entries}, ttl={self.ttl_seconds})"
        )

    # -- internals ------------------------------------------------------

    def _emit(self, name: str, value: int = 1) -> None:
        # Called with the lock held; RecordingTracer uses its own lock and
        # never calls back into the cache, so this cannot deadlock.
        if self.tracer.enabled:
            self.tracer.counter(name, value, tier=self.tier)


def shard_index(key: Any, shards: int) -> int:
    """Map ``key`` to a shard in ``[0, shards)``.

    The mapping must be stable across processes and interpreter restarts
    (warm-start files and tests both rely on it), so it hashes the key's
    ``repr`` with blake2b rather than using the per-process-seeded
    built-in ``hash``.  Fingerprint keys are hex-digest strings, whose
    ``repr`` is stable by construction.
    """
    digest = hashlib.blake2b(
        repr(key).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % shards


class ShardedPlanCache:
    """N independently-locked :class:`PlanCache` shards behind one facade.

    Keys route to shards via :func:`shard_index` (stable across
    processes).  Each shard enforces its own LRU capacity of
    ``ceil(max_entries / shards)`` and its own TTL, so eviction pressure
    in one shard never disturbs another.  All shards carry the *same*
    tier label: their trace counters aggregate naturally in the per-tier
    table, and :meth:`stats` returns the summed view (per-shard
    snapshots via :meth:`shard_stats`).

    The catalog/stats version is kept coherent across shards:
    :meth:`bump_version` bumps every shard under a facade-level lock.

    Args:
        shards: Number of shards; must be >= 1.
        max_entries: *Total* capacity, split evenly across shards.
        ttl_seconds, tier, tracer, clock, injector: As for
            :class:`PlanCache`; shared by every shard.
    """

    def __init__(
        self,
        shards: int = 8,
        max_entries: int = 256,
        ttl_seconds: float | None = None,
        tier: str = "plan",
        tracer: Tracer | None = None,
        clock: Callable[[], float] = time.monotonic,
        injector=None,
    ) -> None:
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        if max_entries < 1:
            raise ValidationError(
                f"max_entries must be >= 1, got {max_entries}"
            )
        per_shard = math.ceil(max_entries / shards)
        self.shards = shards
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.tier = tier
        self._version_lock = threading.Lock()
        self._shards = tuple(
            PlanCache(
                max_entries=per_shard,
                ttl_seconds=ttl_seconds,
                tier=tier,
                tracer=tracer,
                clock=clock,
                injector=injector,
            )
            for _ in range(shards)
        )

    def shard_of(self, key: Any) -> int:
        """The shard index ``key`` routes to (stable across processes)."""
        return shard_index(key, self.shards)

    # -- core operations (route to one shard) ---------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        return self._shards[self.shard_of(key)].get(key, default)

    def put(self, key: Any, value: Any) -> None:
        self._shards[self.shard_of(key)].put(key, value)

    def invalidate(self, key: Any = None) -> int:
        """Drop one entry from its shard, or everything from all shards."""
        if key is not None:
            return self._shards[self.shard_of(key)].invalidate(key)
        return sum(shard.invalidate() for shard in self._shards)

    def bump_version(self) -> int:
        """Bump every shard's catalog/stats version; returns the (common)
        new version number."""
        with self._version_lock:
            versions = {shard.bump_version() for shard in self._shards}
            # Shards only ever advance together under this lock, so they
            # agree on the version.
            (version,) = versions
            return version

    @property
    def version(self) -> int:
        with self._version_lock:
            return self._shards[0].version

    # -- introspection --------------------------------------------------

    def shard_stats(self) -> list[CacheStats]:
        """Per-shard counter snapshots, in shard order."""
        return [shard.stats() for shard in self._shards]

    def stats(self) -> CacheStats:
        """Counters summed over every shard (same shape as one shard's)."""
        per_shard = self.shard_stats()
        return CacheStats(
            tier=self.tier,
            hits=sum(s.hits for s in per_shard),
            misses=sum(s.misses for s in per_shard),
            evictions=sum(s.evictions for s in per_shard),
            stale=sum(s.stale for s in per_shard),
            invalidated=sum(s.invalidated for s in per_shard),
            entries=sum(s.entries for s in per_shard),
        )

    def keys(self) -> list:
        """Resident keys, grouped by shard (LRU order within a shard)."""
        return [key for shard in self._shards for key in shard.keys()]

    def items(self) -> list[tuple[Any, Any]]:
        """Live ``(key, value)`` pairs across every shard."""
        return [pair for shard in self._shards for pair in shard.items()]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, key: Any) -> bool:
        return key in self._shards[self.shard_of(key)]

    def __repr__(self) -> str:
        return (
            f"ShardedPlanCache(tier={self.tier!r}, shards={self.shards}, "
            f"entries={len(self)}/{self.max_entries}, "
            f"ttl={self.ttl_seconds})"
        )
