"""Multi-query optimization: shared join cores computed once per batch.

Batches of analytic queries frequently share large common subexpressions
(the GLADE observation — arXiv:1608.04686): the same join core appears in
many members, differing only in how each member extends it.  This module
gives :meth:`~repro.service.async_service.AsyncOptimizerService.optimize_batch`
a sharing tier on top of the plan cache:

1. **Detection** (:func:`detect_shared_cores`) — every edge of every
   batch member is signed by its endpoint descriptors (relation name,
   effective cardinality) and selectivity; edges whose signature appears
   in ≥ 2 members induce, per member, connected *candidate cores*.  Each
   candidate's full induced subquery (all internal edges, shared or
   not) is canonically fingerprinted via the WL relabeling in
   :mod:`repro.service.fingerprint`; candidates grouped under one key in
   ≥ 2 distinct members become **shared cores**.
2. **Core optimization** (:func:`optimize_core`) — each shared core runs
   serial reference DPsize once, over the canonical core subquery.  The
   *entire* interior memo (every entry of size ≥ 2) is kept, not just
   the winner: that is what makes member splicing exact.
3. **Splicing** (:func:`optimize_with_subplans`) — each sharing member
   relabels the core memo into its own relation numbering and merges
   every entry (`merge_candidate`, the full-row sibling of the cluster
   tier's ``install_summary``), then runs a *sealed* DPsize enumeration:
   candidate pairs falling wholly inside a sealed core mask are skipped
   without being counted — their optima are already installed — so the
   member's WorkMeter is strictly below its unshared baseline while the
   memo's cost content is identical.

Exactness rests on the induced-subquery property (see
:func:`repro.hybrid.stitch.induced_subquery`): a core occurrence carries
its member's cardinalities and internal selectivities, so the core DP's
sub-optima equal the member-priced cost of the same trees.  Splicing is
additionally guarded by :func:`_ref_is_exact`, which verifies the
relabeling is a genuine statistics-preserving isomorphism before any
entry is merged — a WL fingerprint collision degrades to no sharing,
never to a wrong plan.  Costs are bit-identical to the unshared run;
plan *structure* may differ only where two plans tie exactly on cost
(the deterministic ``(left, right, method)`` tie-break keys are
relabeled along with the masks, so relabeling can reorder ties).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

from repro.cost.estimator import CardinalityEstimator
from repro.enumerate.base import OptimizationResult
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo, extract_plan
from repro.plans.operators import JoinMethod
from repro.query.context import QueryContext
from repro.query.joingraph import JoinGraph, Query
from repro.service.fingerprint import (
    canonical_query_form,
    canonical_relation_order,
    cost_model_id,
)
from repro.util.bitsets import bits_of, mask_of, popcount

__all__ = [
    "CoreMemo",
    "CoreRef",
    "MqoPlan",
    "SharedCore",
    "detect_shared_cores",
    "optimize_core",
    "optimize_with_subplans",
]


@dataclass(frozen=True, slots=True)
class CoreRef:
    """One member's occurrence of a shared core.

    Attributes:
        key: The shared core's cache key.
        mask: The member-relation bitmask the core occupies.
        mapping: Canonical core index ``k`` → member relation index.
    """

    key: str
    mask: int
    mapping: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class SharedCore:
    """A join core shared by ≥ 2 batch members.

    Attributes:
        key: Stable cache key (canonical structure + literals + cost
            model + cross-product admissibility).
        query: The canonical core subquery (relations in canonical
            order) that core DP runs over.
        occurrences: Number of member occurrences across the batch.
    """

    key: str
    query: Query
    occurrences: int


@dataclass(frozen=True, slots=True)
class MqoPlan:
    """Outcome of shared-core detection over one batch.

    Attributes:
        cores: ``key`` → :class:`SharedCore` for every shared core.
        members: Per batch slot, the slot's :class:`CoreRef` tuple
            (empty for members that share nothing).
    """

    cores: dict[str, SharedCore]
    members: tuple[tuple[CoreRef, ...], ...]

    @property
    def shares_anything(self) -> bool:
        """True iff at least one core is shared."""
        return bool(self.cores)


@dataclass(frozen=True, slots=True)
class CoreMemo:
    """The cached product of one core optimization — the ``subplan`` tier's
    value type.

    Attributes:
        key: The shared core's cache key.
        query: The canonical core subquery the memo was computed over —
            kept so splices can verify the member relabeling preserves
            every cardinality and selectivity (see :func:`_ref_is_exact`).
        entries: Every interior memo row of the core DP, as compact
            ``(mask, cost, rows, left, right, method)`` tuples (size ≥ 2
            only; scans are re-derived by each member).
        meter: The work spent by the core DP (counted once per core, not
            per member).
    """

    key: str
    query: Query
    entries: tuple[tuple[int, float, float, int, int, int], ...]
    meter: WorkMeter


# ---------------------------------------------------------------------------
# Detection
# ---------------------------------------------------------------------------


def _edge_signature(query: Query, edge) -> tuple:
    """Order-invariant identity of one join edge across batch members."""
    a = (query.relation_names[edge.u], query.cardinalities[edge.u])
    b = (query.relation_names[edge.v], query.cardinalities[edge.v])
    lo, hi = sorted((a, b))
    return (lo, hi, edge.selectivity)


def _components(n: int, edges) -> list[list[int]]:
    """Connected components (≥ 2 relations) of an edge subset."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in edges:
        ru, rv = find(edge.u), find(edge.v)
        if ru != rv:
            parent[ru] = rv
    groups: dict[int, list[int]] = {}
    for i in range(n):
        groups.setdefault(find(i), []).append(i)
    return [
        sorted(group) for group in groups.values() if len(group) >= 2
    ]


def _induced(ctx: QueryContext, mask: int, label: str) -> Query:
    """Induced subquery over ``mask`` (local indices ascending).

    Same construction as :func:`repro.hybrid.stitch.induced_subquery`,
    inlined to keep the service layer free of a hybrid dependency.
    """
    relations = [r for r in range(ctx.n) if mask >> r & 1]
    local = {rel: i for i, rel in enumerate(relations)}
    edges = [
        (local[u], local[v], sel)
        for (u, v), sel in sorted(ctx.edge_selectivity.items())
        if u in local and v in local
    ]
    return Query(
        graph=JoinGraph(len(relations), edges),
        relation_names=tuple(ctx.query.relation_names[r] for r in relations),
        cardinalities=tuple(ctx.cards[r] for r in relations),
        label=label,
    )


def _reorder_query(query: Query, order: list[int], label: str) -> Query:
    """Permute a query's relations so new index ``k`` is ``order[k]``."""
    position = {orig: k for k, orig in enumerate(order)}
    edges = [
        (position[e.u], position[e.v], e.selectivity)
        for e in query.graph.edges
    ]
    return Query(
        graph=JoinGraph(query.n, edges),
        relation_names=tuple(query.relation_names[i] for i in order),
        cardinalities=tuple(query.cardinalities[i] for i in order),
        label=label,
    )


def _core_key(core_query: Query, config) -> str:
    """Stable subplan-tier cache key for one canonical core."""
    structure, literals = canonical_query_form(core_query)
    payload = "|".join(
        (
            "repro.mqo.v1",
            hashlib.sha256(repr(structure).encode()).hexdigest(),
            hashlib.sha256(repr(literals).encode()).hexdigest(),
            cost_model_id(config.effective_cost_model),
            str(bool(config.cross_products)),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def detect_shared_cores(queries, config) -> MqoPlan:
    """Find join cores shared across a batch of bound queries.

    Args:
        queries: The batch members, in slot order.
        config: The service's :class:`~repro.config.OptimizerConfig`
            (``effective_mqo_min_core`` floors the core size; the cost
            model and cross-product flag enter the core keys).

    Returns:
        An :class:`MqoPlan`.  A core must occur in ≥ 2 *distinct* batch
        slots to be shared; candidates are keyed by their full induced
        subquery, so a member with a private predicate inside the same
        relation set simply fingerprints apart and shares nothing.
    """
    queries = list(queries)
    min_core = config.effective_mqo_min_core
    edge_slots: dict[tuple, frozenset[int]] = {}
    raw: dict[tuple, set[int]] = {}
    for slot, query in enumerate(queries):
        for edge in query.graph.edges:
            raw.setdefault(_edge_signature(query, edge), set()).add(slot)
    edge_slots = {sig: frozenset(slots) for sig, slots in raw.items()}

    # Candidate cores are built per *slot-set*: for every distinct set S
    # of ≥ 2 members sharing some edge signature, each member of S takes
    # the components of its edges shared by (at least) all of S.  This
    # finds the core shared by the whole group even when a sub-group
    # additionally shares a private extension edge — with a single "any
    # shared edge" subgraph, that accidental edge would enlarge the
    # component and break the group's fingerprint match.
    slot_sets = sorted(
        {slots for slots in edge_slots.values() if len(slots) >= 2},
        key=lambda s: (len(s), tuple(sorted(s))),
    )
    candidates: dict[str, list[tuple[int, CoreRef]]] = {}
    core_query_of: dict[str, Query] = {}
    emitted: set[tuple[int, int]] = set()  # (slot, mask) dedup across S
    contexts: dict[int, QueryContext] = {}
    for group in slot_sets:
        for slot in sorted(group):
            query = queries[slot]
            group_edges = [
                edge
                for edge in query.graph.edges
                if edge_slots[_edge_signature(query, edge)] >= group
            ]
            if not group_edges:
                continue
            ctx = contexts.get(slot)
            if ctx is None:
                ctx = contexts[slot] = QueryContext(query)
            for component in _components(query.n, group_edges):
                if len(component) < min_core:
                    continue
                mask = mask_of(component)
                if (slot, mask) in emitted:
                    continue
                emitted.add((slot, mask))
                sub = _induced(ctx, mask, f"{query.label}/mqo")
                key = _core_key(sub, config)
                order = canonical_relation_order(sub)
                if key not in core_query_of:
                    core_query_of[key] = _reorder_query(
                        sub, order, label=f"mqo-core-{key[:12]}"
                    )
                # Canonical position k holds local index order[k], which
                # is member relation component[order[k]].
                mapping = tuple(component[local] for local in order)
                candidates.setdefault(key, []).append(
                    (slot, CoreRef(key=key, mask=mask, mapping=mapping))
                )

    cores: dict[str, SharedCore] = {}
    members: list[list[CoreRef]] = [[] for _ in queries]
    for key, occurrences in candidates.items():
        slots = {slot for slot, _ in occurrences}
        if len(slots) < 2:
            continue
        cores[key] = SharedCore(
            key=key,
            query=core_query_of[key],
            occurrences=len(occurrences),
        )
        for slot, ref in occurrences:
            members[slot].append(ref)
    return MqoPlan(
        cores=cores, members=tuple(tuple(refs) for refs in members)
    )


# ---------------------------------------------------------------------------
# Core optimization
# ---------------------------------------------------------------------------


def _populate_dpsize(
    memo: Memo,
    ctx: QueryContext,
    require_connected: bool,
    meter: WorkMeter,
    sealed: tuple[int, ...] = (),
) -> None:
    """Reference DPsize strata loop, optionally *sealed*.

    With ``sealed`` core masks, any candidate pair whose union lies
    wholly inside one sealed mask is skipped silently — no meter count,
    no memo call — because the splice already installed the optimal
    entry for every interior set.  Sealed masks may nest or overlap
    (one member can carry both a group-wide core and a larger core
    shared with a sub-group); every seal's interior is independently
    verified exact, so skipping against any containing seal is sound.
    """
    connects = ctx.connects
    consider = memo.consider_join
    n = ctx.n
    for size in range(2, n + 1):
        for outer_size in range(1, size):
            inner_size = size - outer_size
            outer_sets = memo.sets_of_size(outer_size)
            inner_sets = memo.sets_of_size(inner_size)
            for outer in outer_sets:
                seals = [core for core in sealed if outer & ~core == 0]
                for inner in inner_sets:
                    if seals and any(
                        inner & ~core == 0 for core in seals
                    ):
                        continue  # interior pair: optimum pre-installed
                    meter.pairs_considered += 1
                    if outer & inner:
                        meter.disjoint_fail += 1
                        continue
                    if require_connected:
                        meter.conn_checks += 1
                        if not connects(outer, inner):
                            meter.connectivity_fail += 1
                            continue
                    meter.pairs_valid += 1
                    consider(outer, inner, meter)


def optimize_core(core: SharedCore, config) -> CoreMemo:
    """Run serial reference DPsize over a canonical core; keep the memo.

    The full interior memo (every quantifier set of size ≥ 2) is the
    product, not just the top entry — members splice all of it, so joins
    crossing the core boundary can still consume any interior sub-plan.
    """
    ctx = QueryContext(core.query)
    meter = WorkMeter()
    estimator = CardinalityEstimator(ctx, meter=meter)
    memo = Memo(
        ctx, config.effective_cost_model, estimator=estimator, meter=meter
    )
    memo.init_scans()
    _populate_dpsize(
        memo, ctx, require_connected=not config.cross_products, meter=meter
    )
    entries = tuple(
        (e.mask, e.cost, e.rows, e.left, e.right, int(e.method))
        for e in sorted(memo.entries(), key=lambda e: e.mask)
        if popcount(e.mask) >= 2
    )
    return CoreMemo(
        key=core.key, query=core.query, entries=entries, meter=meter
    )


# ---------------------------------------------------------------------------
# Splicing
# ---------------------------------------------------------------------------


def _ref_is_exact(ctx: QueryContext, ref: CoreRef, core_query: Query) -> bool:
    """Verify a core occurrence is a statistics-preserving isomorphism.

    Checks that the mapping carries every canonical cardinality and edge
    selectivity onto the member exactly, and that the member has no
    *extra* edge internal to the core mask.  This is the safety net that
    turns a (theoretically possible) WL fingerprint collision into a
    skipped splice instead of a wrong cost.
    """
    mapping = ref.mapping
    if len(mapping) != core_query.n:
        return False
    if mask_of(mapping) != ref.mask:
        return False
    for k, rel in enumerate(mapping):
        if ctx.cards[rel] != core_query.cardinalities[k]:
            return False
    internal = sum(
        1
        for (u, v) in ctx.edge_selectivity
        if (1 << u | 1 << v) & ~ref.mask == 0
    )
    if internal != len(core_query.graph.edges):
        return False
    for edge in core_query.graph.edges:
        a, b = mapping[edge.u], mapping[edge.v]
        key = (a, b) if a < b else (b, a)
        if ctx.edge_selectivity.get(key) != edge.selectivity:
            return False
    return True


def optimize_with_subplans(
    query: Query,
    refs,
    cores: dict[str, CoreMemo],
    config,
) -> tuple[OptimizationResult, int]:
    """Optimize one member with shared-core memos spliced in.

    Args:
        query: The member's bound query.
        refs: The member's :class:`CoreRef` occurrences.
        cores: ``key`` → :class:`CoreMemo` for the batch's optimized
            cores (missing keys are tolerated — that core is skipped).
        config: The service's config; ``cross_products`` and the cost
            model must match the values the cores were optimized under
            (the core key guarantees this for cache hits).

    Returns:
        ``(result, cores_used)``.  The result's cost is bit-identical to
        an unshared exact-DP run; its ``extras["mqo"]`` records the
        spliced cores, entry count, and sealed masks.  ``cores_used`` is
        0 when every ref was missing or failed verification — the run is
        then an ordinary reference DPsize.
    """
    ctx = QueryContext(query)
    meter = WorkMeter()
    estimator = CardinalityEstimator(ctx, meter=meter)
    memo = Memo(
        ctx, config.effective_cost_model, estimator=estimator, meter=meter
    )
    start = time.perf_counter()
    memo.init_scans()
    sealed: list[int] = []
    spliced_entries = 0
    used_keys: list[str] = []
    for ref in refs:
        core_memo = cores.get(ref.key)
        if core_memo is None:
            continue
        if not _ref_is_exact(ctx, ref, core_memo.query):
            continue
        mapping = ref.mapping

        def remap(mask: int) -> int:
            out = 0
            for b in bits_of(mask):
                out |= 1 << mapping[b]
            return out

        for cmask, cost, rows, left, right, method in core_memo.entries:
            memo.merge_candidate(
                remap(cmask),
                cost,
                rows,
                remap(left),
                remap(right),
                JoinMethod(method),
            )
        sealed.append(ref.mask)
        spliced_entries += len(core_memo.entries)
        used_keys.append(ref.key)
    _populate_dpsize(
        memo,
        ctx,
        require_connected=not config.cross_products,
        meter=meter,
        sealed=tuple(sealed),
    )
    elapsed = time.perf_counter() - start
    best = memo.best()
    result = OptimizationResult(
        algorithm=config.algorithm,
        plan=extract_plan(memo),
        cost=best.cost,
        rows=best.rows,
        meter=meter,
        memo_entries=len(memo),
        elapsed_seconds=elapsed,
        extras={
            "mqo": {
                "cores": tuple(used_keys),
                "spliced_entries": spliced_entries,
                "sealed_masks": tuple(sealed),
            }
        },
    )
    return result, len(used_keys)
