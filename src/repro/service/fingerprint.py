"""Query fingerprinting — stable cache keys for bound queries.

A fingerprint canonicalizes a bound :class:`~repro.query.joingraph.Query`
together with the parts of an :class:`~repro.config.OptimizerConfig` that
influence the chosen plan into a stable hex digest, so that the plan
cache recognizes a repeated query regardless of how its relations happen
to be numbered.

Canonicalization relabels relations by a deterministic refinement:
relations are first ranked by their *descriptor* (catalog name,
cardinality), then the ranking is refined with a Weisfeiler–Lehman-style
pass over adjacency signatures until it stabilizes.  Two queries that
differ only by a permutation of relation indices therefore produce the
same key whenever the refinement separates all relations (always the
case for catalogs with distinct table names; self-joins are separated by
their join neighbourhoods).  Residual ties between genuinely automorphic
relations fall back to input order — which can only ever cause a cache
*miss* on a permuted resubmission, never a wrong hit.

Two fingerprints are derived per query:

* :attr:`QueryFingerprint.key` — the full digest over structure,
  literals, and config; the plan-cache key.
* The parameterized pair :attr:`QueryFingerprint.structure` /
  :attr:`QueryFingerprint.literals` — the structural digest covers the
  join shape and relation names only, while every numeric literal
  (cardinalities, selectivities) is hashed separately.  Traffic that
  re-issues the same query shape with different statistics shares a
  ``structure`` digest, which is what workload analytics group by.

>>> from repro.query import WorkloadSpec, generate_query
>>> from repro.service import fingerprint_query
>>> q = generate_query(WorkloadSpec("star", 5, seed=3))
>>> fp = fingerprint_query(q)
>>> fp == fingerprint_query(q)      # deterministic
True
>>> len(fp.key)
64
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.query.joingraph import Query

__all__ = [
    "QueryFingerprint",
    "canonical_relation_order",
    "canonical_query_form",
    "cost_model_id",
    "fingerprint_query",
]


@dataclass(frozen=True, slots=True)
class QueryFingerprint:
    """The stable identity of one optimization request.

    Attributes:
        key: Full cache key — SHA-256 hex digest over canonical structure,
            literals, cost-model id, and config digest.
        structure: Digest of the join *shape* only (relation names +
            canonical edge set); literals excluded.
        literals: Digest of the numeric literals only (cardinalities and
            selectivities in canonical order).
    """

    key: str
    structure: str
    literals: str

    def short(self) -> str:
        """First 12 hex chars of the key (display form)."""
        return self.key[:12]


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_relation_order(query: Query) -> list[int]:
    """Relation indices in canonical order.

    Rank by (name, cardinality) descriptor, then refine with iterated
    adjacency signatures (labels of neighbours plus edge selectivities)
    until the partition stabilizes.  Returns the permutation as a list:
    position ``k`` holds the original index of the canonically ``k``-th
    relation.
    """
    graph = query.graph
    n = graph.n
    descriptors = [
        (query.relation_names[i], query.cardinalities[i]) for i in range(n)
    ]
    # Initial labels: dense ranks of the sorted descriptors.
    rank_of = {d: r for r, d in enumerate(sorted(set(descriptors)))}
    labels = [rank_of[d] for d in descriptors]
    for _ in range(n):
        signatures = []
        for i in range(n):
            neighbour_sig = sorted(
                (labels[e.v if e.u == i else e.u], e.selectivity)
                for e in graph.edges
                if i in (e.u, e.v)
            )
            signatures.append((labels[i], tuple(neighbour_sig)))
        rank_of = {s: r for r, s in enumerate(sorted(set(signatures)))}
        refined = [rank_of[s] for s in signatures]
        if refined == labels:
            break
        labels = refined
    # Ties between automorphic relations fall back to input order (stable
    # sort) — deterministic, at worst a cache miss on permuted input.
    return sorted(range(n), key=lambda i: (labels[i], i))


def canonical_query_form(query: Query) -> tuple[tuple, tuple]:
    """Canonical ``(structure, literals)`` pair for a bound query.

    ``structure`` is the join shape: relation count, canonically ordered
    relation names, and the canonically relabeled edge list.  ``literals``
    carries every numeric literal — cardinalities and edge selectivities —
    in the same canonical order, so parameterized fingerprinting can hash
    them separately from the shape.
    """
    order = canonical_relation_order(query)
    position = {orig: k for k, orig in enumerate(order)}
    names = tuple(query.relation_names[i] for i in order)
    cards = tuple(query.cardinalities[i] for i in order)
    edges = []
    for edge in query.graph.edges:
        u, v = position[edge.u], position[edge.v]
        if u > v:
            u, v = v, u
        edges.append((u, v, edge.selectivity))
    edges.sort()
    structure = (query.n, names, tuple((u, v) for u, v, _ in edges))
    literals = (cards, tuple(sel for _, _, sel in edges))
    return structure, literals


def cost_model_id(cost_model) -> str:
    """Stable identity string for a cost model instance.

    Relies on the repo convention that cost models are stateless or
    effectively immutable with an informative ``repr`` (parameters
    included) — e.g. ``StandardCostModel(block_size=128, ...)``.
    """
    return repr(cost_model)


def fingerprint_query(query: Query, config=None) -> QueryFingerprint:
    """Fingerprint a bound query under an optimizer configuration.

    Args:
        query: The bound :class:`~repro.query.joingraph.Query`.
        config: An :class:`~repro.config.OptimizerConfig`; ``None`` uses
            the default config.  Only plan-relevant fields participate
            (via :attr:`OptimizerConfig.digest`): the tracer and the
            service/cache knobs themselves never change the chosen plan
            and are excluded.

    Returns:
        A :class:`QueryFingerprint` whose ``key`` is safe to use as a
        plan-cache key: equal for plan-equivalent requests, different
        whenever the canonical query, the cost model, or a plan-relevant
        config knob differs.
    """
    if config is None:
        from repro.config import OptimizerConfig

        config = OptimizerConfig()
    structure, literals = canonical_query_form(query)
    structure_digest = _digest(repr(structure))
    literal_digest = _digest(repr(literals))
    key = _digest(
        "|".join(
            (
                "repro.fingerprint.v1",
                structure_digest,
                literal_digest,
                config.digest,
            )
        )
    )
    return QueryFingerprint(
        key=key, structure=structure_digest, literals=literal_digest
    )
