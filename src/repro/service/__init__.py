"""Concurrent optimization service: plan caching for repeated traffic.

The paper optimizes one query at a time; a production optimizer serves a
*stream* of queries, most of which it has seen before.  This package is
that serving layer — the first piece of the ROADMAP's
heavy-traffic architecture — in three parts:

* :mod:`repro.service.fingerprint` — canonical, permutation-stable cache
  keys for bound queries (structure and literals hashed separately for
  parameterized traffic).
* :mod:`repro.service.cache` — a thread-safe LRU + TTL
  :class:`PlanCache` with hit/miss/eviction/stale counters, trace
  integration, and catalog/stats-version invalidation hooks.
* :mod:`repro.service.service` — :class:`OptimizerService`: single and
  batched requests, singleflight deduplication of identical in-flight
  optimizations, a bounded worker pool, and per-request deadlines that
  degrade to a heuristic plan instead of raising.

Quick start::

    from repro import OptimizerConfig, OptimizerService

    with OptimizerService(OptimizerConfig(algorithm="dpsva")) as svc:
        first = svc.optimize(query)      # cold: runs the DP
        again = svc.optimize(query)      # warm: served from cache
        assert again.source == "hit" and again.cost == first.cost
"""

from repro.service.cache import CacheStats, PlanCache
from repro.service.fingerprint import (
    QueryFingerprint,
    canonical_query_form,
    canonical_relation_order,
    cost_model_id,
    fingerprint_query,
)
from repro.service.service import (
    OptimizerService,
    ServiceResult,
    ServiceStats,
)

__all__ = [
    "CacheStats",
    "PlanCache",
    "QueryFingerprint",
    "canonical_query_form",
    "canonical_relation_order",
    "cost_model_id",
    "fingerprint_query",
    "OptimizerService",
    "ServiceResult",
    "ServiceStats",
]
