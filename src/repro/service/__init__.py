"""Concurrent optimization serving tier: caching, shedding, persistence.

The paper optimizes one query at a time; a production optimizer serves a
*stream* of queries, most of which it has seen before.  This package is
that serving layer — the ROADMAP's heavy-traffic front door — in six
parts:

* :mod:`repro.service.api` — the unified request/response schema:
  typed :class:`OptimizeRequest` / :class:`OptimizeResponse` dataclasses
  spoken by every entry point (async tier, sync facade, module-level
  ``optimize_batch``, CLI, load generator).
* :mod:`repro.service.fingerprint` — canonical, permutation-stable cache
  keys for bound queries (structure and literals hashed separately for
  parameterized traffic).
* :mod:`repro.service.cache` — a thread-safe LRU + TTL
  :class:`PlanCache` and its N-way :class:`ShardedPlanCache` (per-shard
  locks, aggregated counters), both with trace integration and
  catalog/stats-version invalidation hooks.
* :mod:`repro.service.async_service` — :class:`AsyncOptimizerService`:
  the asyncio-native serving tier with singleflight deduplication,
  admission control, per-tenant token-bucket quotas, deadline
  propagation into retry, and warm-start persistence.
* :mod:`repro.service.mqo` — multi-query optimization for
  ``optimize_batch``: shared join cores detected across batch members
  are optimized once and their memos spliced (exactly) into each
  member's enumeration, surfacing as the ``subplan`` cache tier and
  ``source="subplan"`` provenance.
* :mod:`repro.service.service` — :class:`OptimizerService`: the
  synchronous facade for thread-based callers (identical semantics,
  blocking calls).
* :mod:`repro.service.persist` — the versioned warm-start file format
  (spill on close, reload on start, reject mismatches).

Quick start::

    from repro import OptimizerConfig, OptimizerService

    with OptimizerService(OptimizerConfig(algorithm="dpsva")) as svc:
        first = svc.optimize(query)      # cold: runs the DP
        again = svc.optimize(query)      # warm: served from cache
        assert again.source == "hit" and again.cost == first.cost

Async-native::

    from repro.service import AsyncOptimizerService, OptimizeRequest

    async with AsyncOptimizerService(config) as svc:
        response = await svc.optimize(OptimizeRequest(query, tenant="etl"))
"""

from repro.service.api import (
    OptimizeRequest,
    OptimizeResponse,
    ServiceResult,
    ServiceStats,
)
from repro.service.async_service import AsyncOptimizerService
from repro.service.cache import (
    CacheStats,
    PlanCache,
    ShardedPlanCache,
    shard_index,
)
from repro.service.fingerprint import (
    QueryFingerprint,
    canonical_query_form,
    canonical_relation_order,
    cost_model_id,
    fingerprint_query,
)
from repro.service.mqo import (
    CoreMemo,
    CoreRef,
    MqoPlan,
    SharedCore,
    detect_shared_cores,
    optimize_core,
    optimize_with_subplans,
)
from repro.service.persist import (
    PERSIST_FORMAT,
    load_cache_file,
    spill_cache_file,
)
from repro.service.service import OptimizerService

__all__ = [
    "AsyncOptimizerService",
    "CacheStats",
    "CoreMemo",
    "CoreRef",
    "MqoPlan",
    "OptimizeRequest",
    "OptimizeResponse",
    "OptimizerService",
    "PERSIST_FORMAT",
    "PlanCache",
    "QueryFingerprint",
    "ServiceResult",
    "ServiceStats",
    "ShardedPlanCache",
    "SharedCore",
    "canonical_query_form",
    "canonical_relation_order",
    "cost_model_id",
    "detect_shared_cores",
    "fingerprint_query",
    "load_cache_file",
    "optimize_core",
    "optimize_with_subplans",
    "shard_index",
    "spill_cache_file",
]
