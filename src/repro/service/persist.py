"""Warm-start persistence for the plan cache.

A serving-tier restart used to mean a cold cache — the first wave of
traffic stampedes the optimizer re-deriving plans it had already found.
This module spills the fingerprint→plan map to a *versioned* JSONL file
on ``close()`` and reloads it on start, so a restarted service answers
repeated traffic from the cache immediately.

File layout (one JSON object per line):

* line 1 — header: ``{"format": "repro.plancache.v1", "config_digest":
  ..., "algorithm": ..., "entries": N}``
* lines 2..N+1 — one cached plan each: the fingerprint key plus the
  result's scalar fields, the serialized plan tree
  (:func:`~repro.bench.manifest.plan_to_dict`), and the work-meter
  snapshot.

Safety rules (the provenance-hygiene fix this file owes its existence
to):

* **Spill skips degraded entries.**  The service never caches degraded
  results, but the spiller re-checks anyway: any entry whose extras mark
  it degraded or carry an ``"error"``/``"shed"``/``"fallback"`` source
  is dropped rather than persisted, so a warm-start file can never
  launder a heuristic or failed plan into a future cache hit.
* **Reload rejects mismatches.**  A file whose format tag or config
  digest differs from the loading service's — or that is truncated or
  corrupt — raises :class:`~repro.util.errors.ValidationError` instead
  of silently loading stale plans; the service catches that and starts
  cold.

Restored results are real :class:`~repro.enumerate.base
.OptimizationResult` objects (plan tree rebuilt node-for-node, meter
counts restored) tagged ``extras={"warm_start": True}`` so traces can
tell a restored hit from a same-process one.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro.bench.manifest import plan_from_dict, plan_to_dict
from repro.enumerate.base import OptimizationResult
from repro.memo.counters import WorkMeter
from repro.util.errors import ValidationError

__all__ = ["PERSIST_FORMAT", "load_cache_file", "spill_cache_file"]

PERSIST_FORMAT = "repro.plancache.v1"
"""Format tag stamped in (and required of) every warm-start file."""

# Provenance values that must never be persisted; a warm-start file only
# carries fault-free exact optima.
_DEGRADED_SOURCES = ("error", "shed", "fallback")


def _is_persistable(result: Any) -> bool:
    """Only fault-free exact optima may be spilled."""
    if not isinstance(result, OptimizationResult):
        return False
    extras = result.extras or {}
    if extras.get("degraded"):
        return False
    if extras.get("source") in _DEGRADED_SOURCES:
        return False
    return True


def spill_cache_file(
    path: str | Path,
    entries: Iterable[tuple[str, OptimizationResult]],
    *,
    config_digest: str,
    algorithm: str,
) -> int:
    """Write ``(fingerprint key, result)`` pairs as a warm-start file.

    Degraded entries are skipped (see module docstring).  The file is
    written to a temporary sibling and atomically renamed into place, so
    a crash mid-spill never leaves a truncated file for the next start
    to trip over.  Returns the number of entries persisted.
    """
    path = Path(path)
    lines: list[str] = []
    for key, result in entries:
        if not _is_persistable(result):
            continue
        lines.append(
            json.dumps(
                {
                    "key": key,
                    "algorithm": result.algorithm,
                    "cost": result.cost,
                    "rows": result.rows,
                    "memo_entries": result.memo_entries,
                    "elapsed_seconds": result.elapsed_seconds,
                    "plan": plan_to_dict(result.plan),
                    "meter": result.meter.as_dict(),
                },
                sort_keys=True,
            )
        )
    header = json.dumps(
        {
            "format": PERSIST_FORMAT,
            "config_digest": config_digest,
            "algorithm": algorithm,
            "entries": len(lines),
        },
        sort_keys=True,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text("\n".join([header, *lines]) + "\n")
    os.replace(tmp, path)
    return len(lines)


def load_cache_file(
    path: str | Path,
    *,
    config_digest: str,
) -> list[tuple[str, OptimizationResult]]:
    """Read a warm-start file back as ``(fingerprint key, result)`` pairs.

    Raises :class:`ValidationError` when the file's format tag or config
    digest does not match, the entry count disagrees with the header, or
    any line fails to parse — a rejected file must never half-populate
    the cache with stale plans.  A missing file also raises (callers
    treat every load failure the same way: start cold).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ValidationError(
            f"cannot read warm-start file {path}: {exc}"
        ) from exc
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ValidationError(f"warm-start file {path} is empty")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ValidationError(
            f"warm-start file {path} has a corrupt header: {exc}"
        ) from exc
    if not isinstance(header, dict) or header.get("format") != PERSIST_FORMAT:
        raise ValidationError(
            f"warm-start file {path} has format "
            f"{header.get('format') if isinstance(header, dict) else header!r},"
            f" expected {PERSIST_FORMAT}"
        )
    if header.get("config_digest") != config_digest:
        raise ValidationError(
            f"warm-start file {path} was spilled under a different "
            f"optimizer config (digest mismatch); refusing to load "
            f"stale plans"
        )
    body = lines[1:]
    if header.get("entries") != len(body):
        raise ValidationError(
            f"warm-start file {path} is truncated: header promises "
            f"{header.get('entries')} entries, found {len(body)}"
        )
    restored: list[tuple[str, OptimizationResult]] = []
    for lineno, line in enumerate(body, start=2):
        try:
            record = json.loads(line)
            key = record["key"]
            if not isinstance(key, str):
                raise ValidationError(f"non-string key {key!r}")
            meter = WorkMeter()
            meter.merge_dict(record["meter"])
            result = OptimizationResult(
                algorithm=record["algorithm"],
                plan=plan_from_dict(record["plan"]),
                cost=float(record["cost"]),
                rows=float(record["rows"]),
                meter=meter,
                memo_entries=int(record["memo_entries"]),
                elapsed_seconds=float(record["elapsed_seconds"]),
                extras={"warm_start": True},
            )
        except ValidationError:
            raise
        except Exception as exc:
            raise ValidationError(
                f"warm-start file {path} line {lineno} is corrupt: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        restored.append((key, result))
    return restored
