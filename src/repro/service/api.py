"""The serving tier's request/response schema.

:class:`OptimizeRequest` and :class:`OptimizeResponse` are the single
request currency of the serving layer: the async tier
(:class:`~repro.service.async_service.AsyncOptimizerService`), the
synchronous facade (:class:`~repro.service.service.OptimizerService`),
the module-level :func:`repro.optimize_batch`, the ``serve-batch`` CLI,
and the traffic-replay load generator all accept requests and return
responses of exactly these shapes.

A request carries the bound query plus the per-request serving options
(deadline override, tenant identity for quota accounting, a cosmetic
label).  A response carries the optimization outcome plus explicit
provenance:

============ ========================================================
source       meaning
============ ========================================================
``hit``      served from the plan cache
``miss``     this request ran the optimization (and warmed the cache)
``shared``   joined an identical in-flight optimization (singleflight)
``subplan``  this request ran the optimization with one or more shared
             join-core memos spliced in by the multi-query optimizer
             (:mod:`repro.service.mqo`); the cost is bit-identical to a
             plain miss, but part of the enumeration was reused
``fallback`` the deadline expired; a heuristic plan was returned while
             the exact optimization kept running to warm the cache
``error``    the optimization failed (worker exception, exhausted
             retry budget); a heuristic plan was returned with the
             error message attached
``shed``     the request was refused by admission control or a tenant
             quota before any optimization work was spent; ``result``
             is ``None`` and ``shed_reason`` says which limit tripped
============ ========================================================

``ServiceResult`` is kept as a backwards-compatible alias of
:class:`OptimizeResponse` — PR-2-era code that type-checks against it
keeps working unchanged.

>>> from repro.query import WorkloadSpec, generate_query
>>> from repro.service.api import OptimizeRequest
>>> query = generate_query(WorkloadSpec("star", 5, seed=3))
>>> request = OptimizeRequest(query, tenant="reports")
>>> OptimizeRequest.of(request) is request   # already a request
True
>>> OptimizeRequest.of(query).tenant         # bare queries are coerced
'default'
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.enumerate.base import OptimizationResult
from repro.query.context import QueryContext
from repro.query.joingraph import Query
from repro.service.cache import CacheStats
from repro.service.fingerprint import QueryFingerprint
from repro.util.errors import ValidationError

__all__ = [
    "DEFAULT_TENANT",
    "SOURCES",
    "OptimizeRequest",
    "OptimizeResponse",
    "ServiceResult",
    "ServiceStats",
]

SOURCES = ("hit", "miss", "shared", "subplan", "fallback", "error", "shed")
"""Every provenance value an :class:`OptimizeResponse` may carry."""

SHED_REASONS = ("admission", "quota")
"""Every load-shedding reason (``OptimizeResponse.shed_reason``)."""

DEFAULT_TENANT = "default"
"""Tenant identity assumed when a request does not name one."""


@dataclass(frozen=True, slots=True)
class OptimizeRequest:
    """One optimization request — the serving tier's input currency.

    Attributes:
        query: The bound :class:`~repro.query.joingraph.Query` (a
            prepared :class:`~repro.query.context.QueryContext` is
            coerced to its query at construction).
        timeout: Per-request deadline in seconds, overriding the
            service's configured ``request_timeout``; ``None`` uses the
            service default.  The deadline is a remaining-time budget
            measured from request entry.
        tenant: Tenant identity for per-tenant quota accounting and
            response attribution.
        label: Cosmetic request label (surfaced in traces); never part
            of the cache identity.
    """

    query: Query
    timeout: float | None = None
    tenant: str = DEFAULT_TENANT
    label: str | None = None

    def __post_init__(self) -> None:
        if isinstance(self.query, QueryContext):
            object.__setattr__(self, "query", self.query.query)
        if not isinstance(self.query, Query):
            raise ValidationError(
                f"OptimizeRequest.query must be a Query (or QueryContext), "
                f"got {type(self.query).__name__}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError(
                f"timeout must be positive, got {self.timeout}"
            )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ValidationError(
                f"tenant must be a non-empty string, got {self.tenant!r}"
            )

    @classmethod
    def of(
        cls,
        request,
        *,
        timeout: float | None = None,
        tenant: str | None = None,
    ) -> "OptimizeRequest":
        """Coerce a bare query (or pass a request through) to a request.

        ``timeout``/``tenant`` overrides apply to coerced queries and to
        requests whose corresponding field is still the default, so the
        facade's ``optimize(query, timeout=...)`` convenience arguments
        compose with explicit request objects.
        """
        if isinstance(request, OptimizeRequest):
            if timeout is None and tenant is None:
                return request
            return OptimizeRequest(
                query=request.query,
                timeout=timeout if timeout is not None else request.timeout,
                tenant=tenant if tenant is not None else request.tenant,
                label=request.label,
            )
        if isinstance(request, (Query, QueryContext)):
            return cls(
                query=request,
                timeout=timeout,
                tenant=tenant if tenant is not None else DEFAULT_TENANT,
            )
        raise ValidationError(
            f"cannot build an OptimizeRequest from "
            f"{type(request).__name__}; pass a Query, QueryContext, or "
            f"OptimizeRequest"
        )


@dataclass(frozen=True, slots=True)
class OptimizeResponse:
    """One answered optimization request, with explicit provenance.

    Attributes:
        result: The optimization outcome (exact, cached, or heuristic);
            ``None`` only for shed requests, which do no plan work.
        source: How the request was answered — one of :data:`SOURCES`.
        fingerprint: The request's :class:`QueryFingerprint` (``None``
            for requests shed before fingerprinting).
        elapsed_seconds: Wall-clock service latency for this request,
            including cache lookups, queueing, and any wait on a shared
            flight.
        degraded: True iff the response does not carry the exact
            optimum (deadline expiry, optimization failure, or shed).
        error: The failure message when ``source == "error"``; ``None``
            otherwise.
        tenant: The tenant the request was accounted against.
        shed_reason: Which limit refused the request when
            ``source == "shed"`` (one of :data:`SHED_REASONS`);
            ``None`` otherwise.
    """

    result: OptimizationResult | None
    source: str
    fingerprint: QueryFingerprint | None
    elapsed_seconds: float
    degraded: bool = False
    error: str | None = None
    tenant: str = DEFAULT_TENANT
    shed_reason: str | None = None

    @property
    def plan(self):
        """The plan tree (``None`` for shed responses)."""
        return self.result.plan if self.result is not None else None

    @property
    def cost(self) -> float | None:
        """The plan cost (``None`` for shed responses)."""
        return self.result.cost if self.result is not None else None

    def __post_init__(self) -> None:
        if self.source not in SOURCES:
            raise ValidationError(
                f"unknown provenance {self.source!r}; expected one of "
                f"{SOURCES}"
            )
        if self.source == "shed":
            if self.shed_reason not in SHED_REASONS:
                raise ValidationError(
                    f"shed responses must carry a shed_reason from "
                    f"{SHED_REASONS}, got {self.shed_reason!r}"
                )
            if not self.degraded:
                raise ValidationError("shed responses are degraded")
        else:
            if self.result is None:
                raise ValidationError(
                    f"source {self.source!r} requires a result; only shed "
                    f"responses may omit it"
                )
            if self.shed_reason is not None:
                raise ValidationError(
                    f"shed_reason only applies to shed responses, got "
                    f"source={self.source!r}"
                )


# Backwards-compatible alias: PR-2 code imported ``ServiceResult``; the
# redesigned schema keeps that name bound to the response type.
ServiceResult = OptimizeResponse


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """Aggregate service counters plus per-tier cache snapshots.

    Attributes:
        requests: Requests answered (batch items count individually).
        hits: Requests served from the plan cache.
        optimizations: Exact optimizations actually executed (each one
            corresponds to exactly one distinct missed fingerprint — the
            singleflight guarantee).
        shared: Requests that joined an in-flight optimization.
        fallbacks: Requests degraded to a heuristic plan on deadline.
        errors: Requests degraded because the optimization failed
            (``source == "error"``); singleflight waiters count
            individually, like ``fallbacks``.
        retries: Optimization retry attempts spent recovering from
            worker failures (counted once per attempt, not per waiter).
        plan_cache: The plan tier's :class:`CacheStats` (aggregated
            over shards for a sharded cache).
        fingerprint_cache: The fingerprint tier's :class:`CacheStats`.
        sheds: Requests refused by admission control or a tenant quota
            (``source == "shed"``).
        quota_rejections: The subset of ``sheds`` refused by a tenant
            token bucket.
        warm_start_entries: Plans restored from the warm-start file at
            service start (0 when persistence is off or the file was
            rejected).
        subplan_cache: The shared-subplan tier's :class:`CacheStats`
            (``None`` for services built before the tier existed; the
            async tier always fills it).
        mqo_shared_cores: Shared join cores detected across batches.
        mqo_core_optimizations: Core optimizations actually executed
            (cores answered from the subplan cache don't count).
        mqo_splices: Batch members optimized with at least one core
            memo spliced in (``source == "subplan"``).
        mqo_core_pairs: Enumeration pairs spent inside core
            optimizations — the once-per-core work that replaces the
            members' skipped interior enumeration.
    """

    requests: int
    hits: int
    optimizations: int
    shared: int
    fallbacks: int
    errors: int
    retries: int
    plan_cache: CacheStats
    fingerprint_cache: CacheStats
    sheds: int = 0
    quota_rejections: int = 0
    warm_start_entries: int = 0
    subplan_cache: CacheStats | None = None
    mqo_shared_cores: int = 0
    mqo_core_optimizations: int = 0
    mqo_splices: int = 0
    mqo_core_pairs: int = 0
