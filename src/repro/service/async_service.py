"""The asyncio-native optimization serving tier.

:class:`AsyncOptimizerService` is the rebuilt front door over
:func:`repro.optimize`: requests arrive as
:class:`~repro.service.api.OptimizeRequest` objects (bare queries are
coerced) on one event loop, are answered from an N-way sharded plan
cache (:class:`~repro.service.cache.ShardedPlanCache`), deduplicated
against identical in-flight optimizations (*singleflight*), and
otherwise dispatched to a bounded worker pool via
``loop.run_in_executor`` — the event loop never blocks on optimizer
CPU.  Every answer is an :class:`~repro.service.api.OptimizeResponse`
with explicit provenance (see :mod:`repro.service.api` for the source
table).

On top of the PR-2 cache/singleflight and PR-4 retry/degradation
machinery, the async tier adds the overload-protection layer the
ROADMAP's heavy-traffic north star calls for:

* **Admission control** — when more than ``admission_limit`` requests
  are already suspended waiting on optimizations, new arrivals are
  refused immediately with ``source="shed"`` /
  ``shed_reason="admission"`` instead of queueing without bound.  The
  check runs *after* the cache lookup: a hit settles in one event-loop
  step without waiting, so cache hits are never shed regardless of how
  deep the optimization backlog is.
* **Per-tenant quotas** — a token bucket per ``request.tenant``
  (``quota_rate`` tokens/second, ``quota_burst`` capacity) sheds the
  tenants that exceed their budget (``shed_reason="quota"``) before
  they can starve everyone else's optimizer workers.
* **Deadline propagation** — a request deadline doesn't just bound the
  *wait* (degrading to a heuristic fallback as in PR 4); it propagates
  into the retry machinery: once every waiter of a flight has timed
  out, further retry *attempts* are abandoned (the first attempt always
  runs to completion so a timed-out flight still warms the cache).
* **Warm-start persistence** — with ``warm_start_path`` configured, the
  fingerprint→plan map is spilled to a versioned JSONL file on
  :meth:`close` and reloaded on construction
  (:mod:`repro.service.persist`), so a restart answers repeated traffic
  from the cache instead of stampeding the optimizer.  Files from a
  different config digest or format version are rejected and the
  service starts cold.

Failure semantics are unchanged from PR 4: a miss that raises retries
up to ``retry_limit`` times with exponential backoff before degrading
to the heuristic fallback with ``source="error"``; degraded results are
never cached (and never spilled); nothing re-raises into callers except
:class:`~repro.util.errors.ValidationError` for requests to a closed
service.

The synchronous :class:`~repro.service.service.OptimizerService` facade
wraps this class for thread-based callers; new async code should use
this tier directly::

    async with AsyncOptimizerService(config) as svc:
        response = await svc.optimize(OptimizeRequest(query, tenant="etl"))
        assert response.source in ("hit", "miss", "shared")
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.enumerate.base import OptimizationResult
from repro.query.joingraph import Query
from repro.service.api import (
    OptimizeRequest,
    OptimizeResponse,
    ServiceStats,
)
from repro.service.cache import PlanCache, ShardedPlanCache
from repro.service.fingerprint import QueryFingerprint, fingerprint_query
from repro.service.mqo import (
    CoreMemo,
    CoreRef,
    detect_shared_cores,
    optimize_core,
    optimize_with_subplans,
)
from repro.service.persist import load_cache_file, spill_cache_file
from repro.trace.tracer import Tracer
from repro.util.errors import InjectedFault, ValidationError

__all__ = ["AsyncOptimizerService"]


@dataclass(frozen=True, slots=True)
class _MissOutcome:
    """What one worker-pool optimization produced.

    The miss task never raises into its future; failures surface as a
    fallback ``result`` plus the ``error`` message, so the miss caller
    and every singleflight waiter settle through one code path.
    ``source`` promotes the launcher's ``"miss"`` provenance (currently
    only to ``"subplan"`` when shared core memos were spliced in);
    singleflight waiters keep ``"shared"``.
    """

    result: OptimizationResult
    error: str | None = None
    source: str | None = None


class _Flight:
    """One in-flight optimization: the singleflight unit.

    ``deadline_at`` is the latest absolute deadline over all waiters
    (``None`` once any waiter is unbounded); the worker thread consults
    it before spending a *retry* attempt.  Written only from the event
    loop, read from the worker thread — single-attribute reads/writes,
    so no lock is needed.
    """

    __slots__ = ("key", "future", "deadline_at", "unbounded")

    def __init__(self, key: str) -> None:
        self.key = key
        self.future: asyncio.Future | None = None
        self.deadline_at: float | None = None
        self.unbounded = False

    def note_waiter(self, deadline_at: float | None) -> None:
        if deadline_at is None:
            self.unbounded = True
            self.deadline_at = None
        elif not self.unbounded:
            current = self.deadline_at
            self.deadline_at = (
                deadline_at if current is None else max(current, deadline_at)
            )


class _TokenBucket:
    """Per-tenant request budget: ``rate`` tokens/second, ``burst`` cap."""

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def try_take(self, now: float) -> bool:
        self.tokens = min(
            self.burst, self.tokens + (now - self.stamp) * self.rate
        )
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class AsyncOptimizerService:
    """Sharded, overload-protected async serving tier (see module docs).

    Args:
        config: An :class:`~repro.config.OptimizerConfig`.  Plan-relevant
            fields select the algorithm exactly as :func:`repro.optimize`
            would; the service knobs (``cache_size``, ``cache_ttl``,
            ``cache_shards``, ``service_workers``, ``request_timeout``,
            ``fallback_algorithm``, ``admission_limit``, ``quota_rate``,
            ``quota_burst``, ``warm_start_path``) size this service, and
            the robustness knobs (``retry_limit``, ``retry_backoff``,
            ``fault_plan``) govern failure handling.  ``None`` uses the
            defaults.
        cache: Pre-built plan cache (a :class:`PlanCache` or
            :class:`ShardedPlanCache`; overrides the config's cache
            sizing) — lets several services share one cache.
        tracer: Observability sink; falls back to ``config.tracer``.
            Cache tiers emit ``cache.*`` counters against it, and the
            service emits ``service.request`` / ``service.fallback`` /
            ``service.error`` / ``service.retry`` / ``service.shed`` /
            ``service.cache_error`` / ``service.warm_start``.

    All request-path methods must be called from coroutines on a single
    event loop (the first caller's loop binds the service).  ``stats``,
    ``invalidate``, and ``bump_stats_version`` are thread-safe.
    """

    def __init__(
        self,
        config=None,
        *,
        cache: PlanCache | ShardedPlanCache | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        from repro.config import OptimizerConfig

        if config is None:
            config = OptimizerConfig()
        elif not isinstance(config, OptimizerConfig):
            raise ValidationError(
                f"config must be an OptimizerConfig, got "
                f"{type(config).__name__}"
            )
        self.config = config
        self.tracer = (
            tracer if tracer is not None else config.effective_tracer
        )
        self._injector = config.effective_fault_injector
        self._retry_limit = config.effective_retry_limit
        self._retry_backoff = config.effective_retry_backoff
        if cache is not None:
            self.cache = cache
        elif config.effective_cache_shards == 1:
            self.cache = PlanCache(
                max_entries=config.effective_cache_size,
                ttl_seconds=config.cache_ttl,
                tier="plan",
                tracer=self.tracer,
                injector=self._injector,
            )
        else:
            self.cache = ShardedPlanCache(
                shards=config.effective_cache_shards,
                max_entries=config.effective_cache_size,
                ttl_seconds=config.cache_ttl,
                tier="plan",
                tracer=self.tracer,
                injector=self._injector,
            )
        self._fingerprints = PlanCache(
            max_entries=config.effective_cache_size,
            tier="fingerprint",
            tracer=self.tracer,
            injector=self._injector,
        )
        self._subplans = PlanCache(
            max_entries=config.effective_cache_size,
            ttl_seconds=config.cache_ttl,
            tier="subplan",
            tracer=self.tracer,
            injector=self._injector,
        )
        # MQO splicing is exact only along the serial exact-DP path: the
        # sealed member enumeration is a DPsize pass, so heuristic and
        # threaded configs keep their normal per-query route.
        from repro.config import EXACT_DP_NAMES

        self._mqo_enabled = (
            config.mqo
            and config.algorithm in EXACT_DP_NAMES
            and config.threads is None
        )
        self.timeout = config.request_timeout
        self.fallback_algorithm = config.effective_fallback_algorithm
        self.admission_limit = config.admission_limit
        self._quota_rate = config.quota_rate
        self._quota_burst = config.effective_quota_burst
        self._buckets: dict[str, _TokenBucket] = {}
        workers = config.effective_service_workers
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-service",
        )
        # Deadline fallbacks run on their own small pool so a fleet of
        # stuck misses occupying every optimizer worker can never starve
        # the degradation path (a batch of N expired misses must settle
        # in ~one timeout, not wait for a worker).
        self._fallback_pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(2, workers),
            thread_name_prefix="repro-fallback",
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._inflight: dict[str, _Flight] = {}
        self._waiting = 0
        # Counters cross the loop/worker boundary (retries are bumped on
        # worker threads), so they share one lock.
        self._counter_lock = threading.Lock()
        self._requests = 0
        self._hits = 0
        self._optimizations = 0
        self._shared = 0
        self._fallbacks = 0
        self._errors = 0
        self._retries = 0
        self._sheds = 0
        self._quota_rejections = 0
        self._mqo_shared_cores = 0
        self._mqo_core_optimizations = 0
        self._mqo_splices = 0
        self._mqo_core_pairs = 0
        self._closed = False
        self._warm_start_path = (
            Path(config.warm_start_path)
            if config.warm_start_path is not None
            else None
        )
        self._warm_start_entries = self._load_warm_start()

    # -- public API -----------------------------------------------------

    async def optimize(
        self,
        request,
        *,
        timeout: float | None = None,
        tenant: str | None = None,
    ) -> OptimizeResponse:
        """Answer one request: quota → cache → admission → singleflight.

        Args:
            request: An :class:`OptimizeRequest`, or a bare query /
                prepared context (coerced via :meth:`OptimizeRequest.of`).
            timeout: Convenience override for the request's deadline;
                ``None`` keeps the request's own value (which itself
                defaults to the config's ``request_timeout``).
            tenant: Convenience override for the request's tenant.

        On deadline expiry a heuristic plan (``fallback_algorithm``) is
        returned with ``degraded=True`` — never an exception — while the
        exact optimization continues in the background to warm the
        cache.  A shed request returns ``source="shed"`` with
        ``result=None`` and does no optimization work at all.
        """
        start = time.perf_counter()
        request = OptimizeRequest.of(request, timeout=timeout, tenant=tenant)
        self._enter(request)
        shed = self._shed_reason(request, start)
        if shed is not None:
            return self._shed_response(request, shed, start)
        fingerprint = self._fingerprint(request.query)
        source, flight, cached = self._lookup_or_launch(
            request.query, fingerprint
        )
        if source == "shed":
            return self._shed_response(request, "admission", start)
        deadline = (
            self.timeout if request.timeout is None else request.timeout
        )
        return await self._settle(
            request, fingerprint, source, flight, cached, start, deadline
        )

    async def optimize_batch(
        self, requests, *, timeout: float | None = None
    ) -> list[OptimizeResponse]:
        """Answer a batch, deduplicating identical members.

        All misses are launched before any result is awaited, so
        distinct queries optimize concurrently on the worker pool and
        duplicate members share one flight.  Results preserve input
        order.  The timeout is one *shared* budget measured from batch
        entry: each item waits only the budget remaining when its turn
        to settle comes, so a batch of N misses settles in at most
        ~``timeout`` total (plus one fallback computation per expired
        item), never N×``timeout``.
        """
        batch_start = time.perf_counter()
        batch = [OptimizeRequest.of(item) for item in requests]
        member_refs, core_memos = await self._prepare_subplans(batch)
        staged: list[OptimizeResponse | tuple] = []
        for index, request in enumerate(batch):
            start = time.perf_counter()
            self._enter(request)
            shed = self._shed_reason(request, start)
            if shed is not None:
                staged.append(self._shed_response(request, shed, start))
                continue
            fingerprint = self._fingerprint(request.query)
            refs = member_refs[index] if member_refs is not None else ()
            source, flight, cached = self._lookup_or_launch(
                request.query,
                fingerprint,
                mqo=(refs, core_memos) if refs and core_memos else None,
            )
            if source == "shed":
                staged.append(
                    self._shed_response(request, "admission", start)
                )
                continue
            if flight is None:
                # Cache hits settle immediately, so their recorded
                # latency is the lookup itself, not the whole batch.
                staged.append(
                    await self._settle(
                        request, fingerprint, source, None, cached, start,
                        None,
                    )
                )
            else:
                staged.append((request, fingerprint, start, source, flight))
        settled: list[OptimizeResponse] = []
        for item in staged:
            if isinstance(item, OptimizeResponse):
                settled.append(item)
                continue
            request, fingerprint, start, source, flight = item
            budget = timeout if timeout is not None else (
                request.timeout
                if request.timeout is not None
                else self.timeout
            )
            remaining = None
            if budget is not None:
                remaining = max(
                    0.0, budget - (time.perf_counter() - batch_start)
                )
            settled.append(
                await self._settle(
                    request, fingerprint, source, flight, None, start,
                    remaining,
                )
            )
        return settled

    def invalidate(self) -> int:
        """Drop every cached plan (e.g. after a catalog reload)."""
        return self.cache.invalidate()

    def bump_stats_version(self) -> int:
        """Catalog/stats-change hook: lazily invalidate all cached plans."""
        return self.cache.bump_version()

    def stats(self) -> ServiceStats:
        """Aggregate service + cache counters."""
        with self._counter_lock:
            return ServiceStats(
                requests=self._requests,
                hits=self._hits,
                optimizations=self._optimizations,
                shared=self._shared,
                fallbacks=self._fallbacks,
                errors=self._errors,
                retries=self._retries,
                plan_cache=self.cache.stats(),
                fingerprint_cache=self._fingerprints.stats(),
                sheds=self._sheds,
                quota_rejections=self._quota_rejections,
                warm_start_entries=self._warm_start_entries,
                subplan_cache=self._subplans.stats(),
                mqo_shared_cores=self._mqo_shared_cores,
                mqo_core_optimizations=self._mqo_core_optimizations,
                mqo_splices=self._mqo_splices,
                mqo_core_pairs=self._mqo_core_pairs,
            )

    async def close(self, wait: bool = True) -> None:
        """Refuse new requests, drain in-flight work, spill warm-start.

        Idempotent.  With ``wait=True`` (the default) every in-flight
        optimization is awaited first — a request that timed out and
        degraded still warms the cache before the spill, so the
        warm-start file captures it.
        """
        if self._closed:
            return
        self._closed = True
        if wait:
            pending = [
                flight.future
                for flight in list(self._inflight.values())
                if flight.future is not None
            ]
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._pool.shutdown(wait=wait)
        self._fallback_pool.shutdown(wait=wait)
        self._spill_warm_start()

    async def __aenter__(self) -> "AsyncOptimizerService":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:
        return (
            f"AsyncOptimizerService(algorithm={self.config.algorithm!r}, "
            f"cache={len(self.cache)}/{self.cache.max_entries}, "
            f"inflight={len(self._inflight)}, waiting={self._waiting})"
        )

    # -- admission & quotas ---------------------------------------------

    def _enter(self, request: OptimizeRequest) -> None:
        """Entry bookkeeping + closed check (one event-loop step)."""
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise ValidationError(
                "AsyncOptimizerService is bound to a different event loop"
            )
        if self._closed:
            raise ValidationError("AsyncOptimizerService is closed")
        with self._counter_lock:
            self._requests += 1
        if self.tracer.enabled:
            self.tracer.counter("service.request")

    def _shed_reason(
        self, request: OptimizeRequest, now: float
    ) -> str | None:
        """Pre-fingerprint shed decision: the tenant quota.

        Runs before fingerprinting, so an over-quota request spends no
        hashing or optimizer work and is always charged against its
        bucket — even for queries that would have been cache hits.  The
        *admission* check lives in :meth:`_lookup_or_launch` instead:
        it only sheds requests that would actually have to wait, so
        cache hits are never shed no matter how many optimizations are
        queued.
        """
        if self._quota_rate is not None:
            bucket = self._buckets.get(request.tenant)
            if bucket is None:
                bucket = _TokenBucket(
                    self._quota_rate, self._quota_burst, now
                )
                self._buckets[request.tenant] = bucket
            if not bucket.try_take(now):
                return "quota"
        return None

    def _shed_response(
        self, request: OptimizeRequest, reason: str, start: float
    ) -> OptimizeResponse:
        with self._counter_lock:
            self._sheds += 1
            if reason == "quota":
                self._quota_rejections += 1
        if self.tracer.enabled:
            self.tracer.counter("service.shed", reason=reason)
        return OptimizeResponse(
            result=None,
            source="shed",
            fingerprint=None,
            elapsed_seconds=time.perf_counter() - start,
            degraded=True,
            tenant=request.tenant,
            shed_reason=reason,
        )

    # -- cache & singleflight -------------------------------------------

    def _fingerprint(self, query: Query) -> QueryFingerprint:
        cached = self._cache_get(self._fingerprints, query)
        if cached is not None:
            return cached
        fingerprint = fingerprint_query(query, self.config)
        self._cache_put(self._fingerprints, query, fingerprint)
        return fingerprint

    def _cache_get(self, cache, key):
        """Cache lookup that absorbs injected cache faults.

        Fail-open: a faulting cache tier is served as a miss (counted as
        ``service.cache_error``), never an exception to the caller.
        """
        try:
            return cache.get(key)
        except InjectedFault:
            if self.tracer.enabled:
                self.tracer.counter("service.cache_error", tier=cache.tier)
            return None

    def _cache_put(self, cache, key, value) -> None:
        """Cache insert that absorbs injected cache faults (fail-open)."""
        try:
            cache.put(key, value)
        except InjectedFault:
            if self.tracer.enabled:
                self.tracer.counter("service.cache_error", tier=cache.tier)

    async def _prepare_subplans(self, batch):
        """Batch pre-pass: detect shared join cores, optimize each once.

        Returns ``(member_refs, core_memos)`` — per-slot
        :class:`~repro.service.mqo.CoreRef` tuples and the optimized
        (or subplan-cache-restored) core memos.  Disabled configs and
        sub-2 batches return ``(None, {})`` and cost nothing.  A core
        whose optimization fails is simply dropped: its members fall
        back to plain misses — sharing is an optimization, never a new
        failure mode.
        """
        if not self._mqo_enabled or len(batch) < 2:
            return None, {}
        plan = detect_shared_cores(
            [request.query for request in batch], self.config
        )
        if not plan.cores:
            return None, {}
        with self._counter_lock:
            self._mqo_shared_cores += len(plan.cores)
        if self.tracer.enabled:
            self.tracer.counter("mqo.shared_cores", len(plan.cores))
        loop = asyncio.get_running_loop()
        core_memos: dict[str, CoreMemo] = {}
        pending: dict[str, asyncio.Future] = {}
        for key, core in plan.cores.items():
            cached = self._cache_get(self._subplans, key)
            if cached is not None:
                core_memos[key] = cached
                if self.tracer.enabled:
                    self.tracer.counter("mqo.core_cache_hit")
                continue
            try:
                pending[key] = loop.run_in_executor(
                    self._pool, optimize_core, core, self.config
                )
            except RuntimeError:
                break  # pool shut down mid-batch; _enter will refuse
        for key, future in pending.items():
            try:
                core_memo = await future
            except Exception:
                if self.tracer.enabled:
                    self.tracer.counter("mqo.core_error")
                continue
            core_memos[key] = core_memo
            self._cache_put(self._subplans, key, core_memo)
            with self._counter_lock:
                self._mqo_core_optimizations += 1
                self._mqo_core_pairs += core_memo.meter.pairs_considered
            if self.tracer.enabled:
                self.tracer.counter("mqo.core_optimized")
        return plan.members, core_memos

    def _lookup_or_launch(
        self,
        query: Query,
        fingerprint: QueryFingerprint,
        mqo: tuple[tuple[CoreRef, ...], dict[str, CoreMemo]] | None = None,
    ):
        """Resolve a request to a hit, a joined/new flight, or a shed.

        Returns ``(source, flight, cached_result)``: a ``"hit"`` carries
        the cached result, ``"miss"``/``"shared"`` carry a flight, and
        ``("shed", None, None)`` means the admission limit is reached
        and the caller must answer with an admission-shed response
        (cache hits bypass the limit — they never wait).  Contains no
        ``await``,
        so it is atomic on the event loop: two identical concurrent
        requests can never both launch.  A post-shutdown executor
        submit is translated to :class:`ValidationError` rather than
        leaking the pool's bare ``RuntimeError``.
        """
        key = fingerprint.key
        cached = self._cache_get(self.cache, key)
        if cached is not None:
            with self._counter_lock:
                self._hits += 1
            return "hit", None, cached
        # Admission control, checked only once the request is known to
        # need a flight: joining or launching one means suspending until
        # a worker delivers, and ``admission_limit`` caps how many
        # requests may be suspended at once.  Cache hits settle without
        # waiting, so they are never shed here.
        if (
            self.admission_limit is not None
            and self._waiting >= self.admission_limit
        ):
            return "shed", None, None
        flight = self._inflight.get(key)
        if flight is not None:
            with self._counter_lock:
                self._shared += 1
            return "shared", flight, None
        flight = _Flight(key)
        try:
            flight.future = self._loop.run_in_executor(
                self._pool, self._run_miss, key, query, flight, mqo
            )
        except RuntimeError as exc:
            raise ValidationError(
                "AsyncOptimizerService is closed"
            ) from exc
        self._inflight[key] = flight
        flight.future.add_done_callback(
            lambda _f, key=key, flight=flight: self._deregister(key, flight)
        )
        with self._counter_lock:
            self._optimizations += 1
        return "miss", flight, None

    def _deregister(self, key: str, flight: _Flight) -> None:
        if self._inflight.get(key) is flight:
            del self._inflight[key]

    def _run_miss(
        self,
        key: str,
        query: Query,
        flight: _Flight,
        mqo: tuple | None = None,
    ) -> _MissOutcome:
        """Worker-pool task: run the exact optimization, warm the cache.

        Failures retry up to ``retry_limit`` times with exponential
        backoff; an exhausted budget degrades to the heuristic fallback
        with the error attached instead of raising, so singleflight
        waiters never see a raw exception.  A *retry* attempt (never the
        first) is abandoned once the flight's latest waiter deadline has
        passed — nobody is waiting for it anymore, and a fresh request
        will relaunch.  Only fault-free optima are cached.

        With ``mqo=(refs, core_memos)`` the optimization runs through
        :func:`~repro.service.mqo.optimize_with_subplans`; when at least
        one core memo was actually spliced (verification can still skip
        them all) the outcome carries ``source="subplan"``.  Spliced
        results are exact optima, so they are cached like any miss.
        """
        from repro import _run

        last: Exception | None = None
        for attempt in range(self._retry_limit + 1):
            if attempt:
                deadline_at = flight.deadline_at
                if (
                    not flight.unbounded
                    and deadline_at is not None
                    and time.perf_counter() > deadline_at
                ):
                    return _MissOutcome(
                        result=self._heuristic_fallback(query),
                        error=(
                            f"{type(last).__name__}: {last} "
                            f"(retries abandoned past request deadline)"
                        ),
                    )
                with self._counter_lock:
                    self._retries += 1
                if self.tracer.enabled:
                    self.tracer.counter("service.retry")
                if self._retry_backoff:
                    time.sleep(self._retry_backoff * (2 ** (attempt - 1)))
            try:
                if self._injector.enabled:
                    self._injector.check(
                        "service", phase="miss", attempt=attempt + 1
                    )
                source = None
                if mqo is not None:
                    refs, core_memos = mqo
                    result, cores_used = optimize_with_subplans(
                        query, refs, core_memos, self.config
                    )
                    if cores_used:
                        source = "subplan"
                        with self._counter_lock:
                            self._mqo_splices += 1
                        if self.tracer.enabled:
                            self.tracer.counter(
                                "mqo.splices", cores=cores_used
                            )
                else:
                    result = _run(query, self.config)
            except Exception as exc:
                last = exc
                continue
            self._cache_put(self.cache, key, result)
            return _MissOutcome(result=result, source=source)
        return _MissOutcome(
            result=self._heuristic_fallback(query),
            error=f"{type(last).__name__}: {last}",
        )

    # -- settling -------------------------------------------------------

    async def _settle(
        self,
        request: OptimizeRequest,
        fingerprint: QueryFingerprint,
        source: str,
        flight: _Flight | None,
        cached,
        start: float,
        deadline: float | None,
    ) -> OptimizeResponse:
        """Wait for a staged request's outcome, degrading on deadline or
        failure (each singleflight waiter settles — and is counted —
        independently)."""
        degraded = False
        error: str | None = None
        result = cached
        if flight is not None:
            if deadline is None:
                flight.note_waiter(None)
                remaining = None
            else:
                flight.note_waiter(start + deadline)
                remaining = max(
                    0.0, deadline - (time.perf_counter() - start)
                )
            self._waiting += 1
            try:
                if remaining is None:
                    outcome = await asyncio.shield(flight.future)
                else:
                    # shield: a timed-out wait must not cancel the
                    # flight — it keeps running to warm the cache.
                    outcome = await asyncio.wait_for(
                        asyncio.shield(flight.future), remaining
                    )
            except (asyncio.TimeoutError, TimeoutError):
                result = await self._fallback(request.query)
                source, degraded = "fallback", True
                with self._counter_lock:
                    self._fallbacks += 1
                if self.tracer.enabled:
                    self.tracer.counter("service.fallback")
            except asyncio.CancelledError:
                if not flight.future.cancelled():
                    raise  # the *waiter* was cancelled; propagate
                result = await self._fallback(request.query)
                source, degraded = "error", True
                error = "CancelledError: flight cancelled during shutdown"
                with self._counter_lock:
                    self._errors += 1
                if self.tracer.enabled:
                    self.tracer.counter("service.error")
            except Exception as exc:
                # Defensive: the miss task reports failures through its
                # _MissOutcome, so a raw exception here means something
                # outside the retry loop broke.  Degrade, don't raise.
                result = await self._fallback(request.query)
                source, degraded = "error", True
                error = f"{type(exc).__name__}: {exc}"
                with self._counter_lock:
                    self._errors += 1
                if self.tracer.enabled:
                    self.tracer.counter("service.error")
            else:
                result = outcome.result
                if outcome.error is not None:
                    source, degraded, error = "error", True, outcome.error
                    with self._counter_lock:
                        self._errors += 1
                    if self.tracer.enabled:
                        self.tracer.counter("service.error")
                elif outcome.source is not None and source == "miss":
                    # Only the launching request is promoted (e.g. to
                    # "subplan"); singleflight waiters stay "shared".
                    source = outcome.source
            finally:
                self._waiting -= 1
        return OptimizeResponse(
            result=result,
            source=source,
            fingerprint=fingerprint,
            elapsed_seconds=time.perf_counter() - start,
            degraded=degraded,
            error=error,
            tenant=request.tenant,
        )

    async def _fallback(self, query: Query) -> OptimizationResult:
        """Heuristic fallback off the optimizer pool (never starved by
        stuck misses); computed inline if the pool is already shut."""
        try:
            return await self._loop.run_in_executor(
                self._fallback_pool, self._heuristic_fallback, query
            )
        except RuntimeError:
            return self._heuristic_fallback(query)

    def _heuristic_fallback(self, query: Query) -> OptimizationResult:
        """Produce a valid plan quickly after a missed deadline."""
        from repro.heuristics import HEURISTICS
        from repro.heuristics.goo import GOO

        name = self.fallback_algorithm
        if name == "goo":
            algo = GOO(cross_products=self.config.cross_products)
        else:
            algo = HEURISTICS[name]()
        return algo.optimize(
            query, cost_model=self.config.effective_cost_model
        )

    # -- warm-start persistence -----------------------------------------

    def _load_warm_start(self) -> int:
        """Reload the spilled plan map, if any; reject mismatches.

        A missing file is a normal first boot.  A present-but-invalid
        file (format/config-digest mismatch, truncation, corruption) is
        *rejected whole* — the service starts cold and counts the
        rejection — never half-loaded.
        """
        path = self._warm_start_path
        if path is None or not path.exists():
            return 0
        try:
            restored = load_cache_file(path, config_digest=self.config.digest)
        except ValidationError:
            if self.tracer.enabled:
                self.tracer.counter("service.warm_start_rejected")
            return 0
        for key, result in restored:
            self._cache_put(self.cache, key, result)
        if self.tracer.enabled and restored:
            self.tracer.counter("service.warm_start", len(restored))
        return len(restored)

    def _spill_warm_start(self) -> None:
        if self._warm_start_path is None:
            return
        try:
            spill_cache_file(
                self._warm_start_path,
                self.cache.items(),
                config_digest=self.config.digest,
                algorithm=self.config.algorithm,
            )
        except OSError:
            # Spilling is a best-effort optimization; a read-only disk
            # must not turn a clean shutdown into a crash.
            if self.tracer.enabled:
                self.tracer.counter("service.warm_start_spill_error")
