"""The optimizer configuration object — the library's redesigned front
door.

:class:`OptimizerConfig` gathers every knob :func:`repro.optimize` and
:class:`~repro.parallel.scheduler.ParallelDP` understand into one frozen,
validated dataclass.  Parallel-only options (``backend``, ``allocation``,
``oversubscription``, ``sim_params``) default to ``None`` meaning *unset*;
effective values are resolved through the ``effective_*`` properties, and
setting any of them without ``threads`` is rejected in ``__post_init__``
with a single coherent :class:`~repro.util.errors.ValidationError` —
replacing the ad-hoc ``threads is None`` checks that used to be scattered
across the call sites.

The legacy keyword path (``optimize(query, algorithm=..., threads=...)``)
still works but is **deprecated**: it is a thin shim over
:meth:`OptimizerConfig.from_kwargs` and emits a ``DeprecationWarning``.
Construct the config directly:

>>> from repro import OptimizerConfig
>>> config = OptimizerConfig(algorithm="dpsva", threads=8)
>>> config.is_parallel
True
>>> config.effective_backend
'simulated'
>>> config.with_options(threads=None).is_parallel
False

Because the config is frozen, per-call derivations are hoisted onto it
and computed exactly once: the resolved cost model, the plan-relevant
digest, and the serial-runner dispatch are all cached properties, so
calling :func:`repro.optimize` twice with the same config re-derives
nothing:

>>> config.effective_cost_model is config.effective_cost_model
True

The service knobs (``cache_size``, ``cache_ttl``, ``service_workers``,
``request_timeout``, ``fallback_algorithm``) size an
:class:`~repro.service.OptimizerService` built from the config; they
never influence which plan is chosen and are therefore excluded from
:attr:`OptimizerConfig.digest` (the fingerprint/cache identity).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields as dataclass_fields, replace
from functools import cached_property

from repro.cost.model import CostModel
from repro.enumerate import SERIAL_ALGORITHMS
from repro.heuristics import HEURISTICS
from repro.parallel.allocation import ALLOCATION_SCHEMES, DYNAMIC_ALLOCATION
from repro.parallel.executors import EXECUTORS
from repro.parallel.workunits import PARALLEL_ALGORITHMS
from repro.simx.costparams import SimCostParams
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.errors import ValidationError

SERIAL_NAMES = tuple(sorted(SERIAL_ALGORITHMS)) + ("dpsva", "exhaustive")
"""Serial exact algorithms accepted by ``algorithm``."""

HEURISTIC_NAMES = tuple(sorted(HEURISTICS))
"""Heuristic algorithms accepted by ``algorithm``."""

HYBRID_NAME = "hybrid"
"""The adaptive DP/heuristic hybrid (:mod:`repro.hybrid`)."""

ALL_ALGORITHMS = tuple(
    sorted(set(SERIAL_NAMES) | set(HEURISTIC_NAMES) | {HYBRID_NAME})
)
"""Every algorithm name the front door accepts."""

EXACT_DP_NAMES = tuple(sorted(SERIAL_ALGORITHMS)) + ("dpsva",)
"""Exact DP kernels eligible as the hybrid's per-core enumerator."""

_PARALLEL_ONLY = (
    "backend",
    "allocation",
    "oversubscription",
    "sim_params",
    "cluster_workers",
    "cluster_connect",
)

DEFAULT_BACKEND = "simulated"
DEFAULT_ALLOCATION = "equi_depth"
DEFAULT_OVERSUBSCRIPTION = 4

DEFAULT_CACHE_SIZE = 256
DEFAULT_CACHE_SHARDS = 8
DEFAULT_SERVICE_WORKERS = 4
DEFAULT_FALLBACK_ALGORITHM = "goo"
DEFAULT_MQO_MIN_CORE = 3

DEFAULT_RETRY_LIMIT = 2
DEFAULT_RETRY_BACKOFF = 0.02

DEFAULT_HYBRID_DP = "dpsize"

_HYBRID = ("hybrid_core_cap", "hybrid_density", "hybrid_dp")
"""Hybrid-decomposition knobs; they change which plan is chosen, so they
stay in the digest (unlike the service/cluster knobs) — two configs with
different core caps may legitimately cache different plans."""

_SERVICE_ONLY = (
    "cache_size",
    "cache_ttl",
    "cache_shards",
    "service_workers",
    "request_timeout",
    "fallback_algorithm",
    "admission_limit",
    "quota_rate",
    "quota_burst",
    "warm_start_path",
    "mqo",
    "mqo_min_core",
)
"""Fields that size an OptimizerService; excluded from the plan digest.

The multi-query knobs (``mqo``, ``mqo_min_core``) live here because
shared-subplan splicing is cost-exact (tests/test_mqo.py): toggling MQO
never changes a returned plan's cost, so cached plans stay valid."""

_ROBUSTNESS = ("retry_limit", "retry_backoff", "fault_plan")
"""Fault-tolerance knobs; excluded from the plan digest because recovery
either reproduces the exact optimum or returns an uncached degraded
result — cached plans are always fault-free optima."""

_RESULT_INVARIANT = ("shared_memo", "vectorize")
"""Execution-strategy knobs verified bit-identical by the parity harness
(tests/test_fast_path_parity.py, tests/test_vec_kernels.py); excluded
from the plan digest so toggling them never invalidates cached plans or
spilled warm-start files."""

_CLUSTER = ("cluster_workers", "cluster_connect")
"""Cluster-topology knobs (how many shard owners, where they listen);
excluded from the plan digest because the shard partition is
result-invariant — every worker count and transport produces the
bit-identical optimum (tests/test_cluster_executor.py)."""


@dataclass(frozen=True)
class OptimizerConfig:
    """Validated, immutable description of one optimization setup.

    Attributes:
        algorithm: Enumerator or heuristic name (see
            :data:`ALL_ALGORITHMS`).
        threads: Degree of parallelism; ``None`` selects the serial path.
        backend: Executor substrate for parallel runs (``simulated`` /
            ``threads`` / ``processes``); ``None`` = default.
        allocation: Work-unit allocation scheme; ``None`` = default.
        cost_model: Cost model instance; ``None`` = ``StandardCostModel``.
        cross_products: Admit cross-product joins.
        oversubscription: Work units per thread per stratum split
            (parallel runs); ``None`` = default.
        sim_params: Virtual cost parameters for the simulated backend.
        tracer: Observability sink (:mod:`repro.trace`); ``None`` disables
            tracing at zero cost.
        cache_size: Plan-cache capacity for an
            :class:`~repro.service.OptimizerService` built from this
            config; ``None`` = default.
        cache_ttl: Plan-cache time-to-live in seconds; ``None`` disables
            expiry.
        cache_shards: Number of independently-locked plan-cache shards;
            ``None`` = default (8).  1 degenerates to the single-lock
            cache.
        service_workers: Worker-pool size of the service; ``None`` =
            default.
        request_timeout: Per-request service deadline in seconds, after
            which a heuristic plan is returned; ``None`` waits
            indefinitely.
        fallback_algorithm: Heuristic used when a deadline expires;
            ``None`` = default (``goo``).
        admission_limit: Maximum requests concurrently *waiting* on
            optimizations before the service sheds new arrivals with
            ``source="shed"``; ``None`` (the default) never sheds.
        quota_rate: Per-tenant token-bucket refill rate in
            requests/second; ``None`` (the default) disables tenant
            quotas.
        quota_burst: Per-tenant token-bucket capacity; ``None`` derives
            ``max(1, int(quota_rate))``.  Requires ``quota_rate``.
        warm_start_path: Path of the warm-start cache file: spilled on
            service close, reloaded on service start (rejecting
            version/config mismatches).  ``None`` disables persistence.
        mqo: Multi-query optimization for ``optimize_batch``: detect
            join cores shared by several batch members, optimize each
            core once, and splice the core's memo into every member
            before its own enumeration (``source="subplan"``).  Spliced
            answers are cost-identical to unshared optimization;
            see ``docs/sql.md``.  Default off.
        mqo_min_core: Smallest shared core (relation count) worth
            splicing; ``None`` = default (3).  Requires ``mqo=True``.
        retry_limit: Bounded-retry budget for fault recovery — extra
            attempts after the first failure, both for executor work-unit
            re-dispatch and for the service's per-request exact-
            optimization retries; ``None`` = default (2).
        retry_backoff: Base of the exponential backoff slept between
            retry attempts, in seconds (attempt ``k`` waits
            ``retry_backoff * 2**k``); ``None`` = default (0.02).
        fault_plan: Fault-injection schedule for chaos testing — a plan
            string parsed by :meth:`repro.faults.FaultInjector.from_plan`
            (e.g. ``"worker:crash@worker=1"``) or a ready-made
            :class:`~repro.faults.FaultInjector`.  ``None`` (the
            default) injects nothing at zero cost.
        fast_path: Run the fused enumeration kernels against the
            struct-of-arrays memo backend where eligible (default on).
            Guaranteed result-identical to the reference path — plan,
            cost, memo contents, and meter totals all match bit-for-bit —
            and falls back automatically when a configuration is not
            eligible (masks wider than 64 bits, or a cost model whose
            batched costing disagrees with its per-method costing).  Set
            False to force the reference implementation, e.g. for A/B
            timing (see ``docs/performance.md``).
        shared_memo: Parallel runs on the ``processes`` backend only —
            keep the memo in named shared-memory segments
            (:mod:`repro.memo.shm`) so workers attach zero-copy and ship
            back only their winner rows, instead of the per-stratum wire
            broadcast.  Eligibility is probed at run time (POSIX shared
            memory, SoA-compatible memo) with automatic fallback to the
            wire path; results are identical either way.  Other backends
            ignore the flag.  See ``docs/memory.md``.
        vectorize: Tri-state numpy upgrade of the fast path: ``None``
            (the default) and ``True`` run the vectorized memo costing
            and filter kernels when numpy (the optional ``perf`` extra)
            is importable; ``False`` forces the pure list-comprehension
            kernels.  Requesting ``True`` without numpy degrades
            gracefully — it is a capability probe, not a hard dependency.
            Results are identical in every case.
        cluster_workers: Cluster backend only — number of shard-owning
            workers; ``None`` defaults to ``threads``.  Requires
            ``backend="cluster"``.
        cluster_connect: Cluster backend only — ``host:port`` addresses
            of pre-started ``repro worker --listen`` processes, one per
            worker (its length overrides ``cluster_workers``).  ``None``
            (the default) forks the workers in-process.  See
            ``docs/distributed.md``.
        hybrid_core_cap: ``algorithm="hybrid"`` only — largest sub-query
            handed to exact DP.  Queries at or below the cap are a single
            core (pure exact DP, zero optimality gap).  ``None`` =
            default (12).
        hybrid_density: ``algorithm="hybrid"`` only — minimum induced
            edge density (``edges / C(size, 2)``) a growing core must
            keep, in ``(0, 1]``.  ``None`` = default (0.3).
        hybrid_dp: ``algorithm="hybrid"`` only — the exact DP kernel run
            on each core (:data:`EXACT_DP_NAMES`).  With ``threads`` set
            it must be one of the parallel kernels.  ``None`` = default
            (``dpsize``).
    """

    algorithm: str = "dpsize"
    threads: int | None = None
    backend: str | None = None
    allocation: str | None = None
    cost_model: CostModel | None = None
    cross_products: bool = False
    oversubscription: int | None = None
    sim_params: SimCostParams | None = None
    tracer: Tracer | None = None
    cache_size: int | None = None
    cache_ttl: float | None = None
    cache_shards: int | None = None
    service_workers: int | None = None
    request_timeout: float | None = None
    fallback_algorithm: str | None = None
    admission_limit: int | None = None
    quota_rate: float | None = None
    quota_burst: int | None = None
    warm_start_path: str | None = None
    mqo: bool = False
    mqo_min_core: int | None = None
    retry_limit: int | None = None
    retry_backoff: float | None = None
    fault_plan: object | None = None
    fast_path: bool = True
    shared_memo: bool = False
    vectorize: bool | None = None
    cluster_workers: int | None = None
    cluster_connect: tuple[str, ...] | None = None
    hybrid_core_cap: int | None = None
    hybrid_density: float | None = None
    hybrid_dp: str | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALL_ALGORITHMS:
            raise ValidationError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{list(ALL_ALGORITHMS)}"
            )
        if self.cluster_connect is not None and not isinstance(
            self.cluster_connect, tuple
        ):
            # Normalize list input so the frozen config stays hashable
            # and the digest representation is canonical.
            object.__setattr__(
                self, "cluster_connect", tuple(self.cluster_connect)
            )
        if (
            self.threads is None
            and self.backend == "cluster"
            and (self.cluster_workers or self.cluster_connect)
        ):
            # The cluster knobs already name a worker count; a cluster
            # run is by definition parallel, so derive threads rather
            # than demanding the caller state it twice.
            object.__setattr__(
                self,
                "threads",
                self.cluster_workers or len(self.cluster_connect),
            )
        if self.threads is not None:
            if self.threads < 1:
                raise ValidationError(
                    f"threads must be >= 1, got {self.threads}"
                )
            if (
                self.algorithm not in PARALLEL_ALGORITHMS
                and self.algorithm != HYBRID_NAME
            ):
                raise ValidationError(
                    f"algorithm {self.algorithm!r} has no parallel kernel; "
                    f"threads= requires one of {list(PARALLEL_ALGORITHMS)} "
                    f"or 'hybrid' (which runs its DP cores in parallel) — "
                    f"drop threads= for a serial run"
                )
        else:
            set_options = [
                name
                for name in _PARALLEL_ONLY
                if getattr(self, name) is not None
            ]
            if set_options:
                raise ValidationError(
                    f"options {set_options} only apply to parallel runs; "
                    f"set threads= (or drop them)"
                )
        if self.algorithm != HYBRID_NAME:
            set_hybrid = [
                name for name in _HYBRID if getattr(self, name) is not None
            ]
            if set_hybrid:
                raise ValidationError(
                    f"options {set_hybrid} only apply to "
                    f"algorithm='hybrid', got "
                    f"algorithm={self.algorithm!r}"
                )
        if self.hybrid_core_cap is not None and self.hybrid_core_cap < 1:
            raise ValidationError(
                f"hybrid_core_cap must be >= 1, got {self.hybrid_core_cap}"
            )
        if self.hybrid_density is not None and not (
            0.0 < self.hybrid_density <= 1.0
        ):
            raise ValidationError(
                f"hybrid_density must be in (0, 1], got "
                f"{self.hybrid_density}"
            )
        if self.algorithm == HYBRID_NAME:
            dp = self.effective_hybrid_dp
            if dp not in EXACT_DP_NAMES:
                raise ValidationError(
                    f"hybrid_dp {dp!r} is not an exact DP kernel; "
                    f"expected one of {list(EXACT_DP_NAMES)}"
                )
            if self.threads is not None and dp not in PARALLEL_ALGORITHMS:
                raise ValidationError(
                    f"hybrid_dp {dp!r} has no parallel kernel; threads= "
                    f"with algorithm='hybrid' requires hybrid_dp in "
                    f"{list(PARALLEL_ALGORITHMS)}"
                )
        if self.shared_memo and self.threads is None:
            raise ValidationError(
                "shared_memo only applies to parallel runs; set threads= "
                "(and backend='processes')"
            )
        if self.cluster_workers is not None:
            if self.cluster_workers < 1:
                raise ValidationError(
                    f"cluster_workers must be >= 1, got "
                    f"{self.cluster_workers}"
                )
            if self.effective_backend != "cluster":
                raise ValidationError(
                    "cluster_workers requires backend='cluster', got "
                    f"backend={self.effective_backend!r}"
                )
        if self.cluster_connect is not None:
            if self.effective_backend != "cluster":
                raise ValidationError(
                    "cluster_connect requires backend='cluster', got "
                    f"backend={self.effective_backend!r}"
                )
            from repro.parallel.net import parse_hostport

            for addr in self.cluster_connect:
                try:
                    parse_hostport(addr)
                except (ValueError, TypeError) as exc:
                    raise ValidationError(
                        f"cluster_connect address {addr!r} is not "
                        f"host:port: {exc}"
                    ) from exc
            if (
                self.cluster_workers is not None
                and len(self.cluster_connect) != self.cluster_workers
            ):
                raise ValidationError(
                    f"cluster_connect lists {len(self.cluster_connect)} "
                    f"addresses but cluster_workers={self.cluster_workers}"
                )
        if self.backend is not None and self.backend not in EXECUTORS:
            raise ValidationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{sorted(EXECUTORS)}"
            )
        valid_allocations = sorted(ALLOCATION_SCHEMES) + [DYNAMIC_ALLOCATION]
        if (
            self.allocation is not None
            and self.allocation not in valid_allocations
        ):
            raise ValidationError(
                f"unknown allocation scheme {self.allocation!r}; expected "
                f"one of {valid_allocations}"
            )
        if self.oversubscription is not None and self.oversubscription < 1:
            raise ValidationError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )
        if self.tracer is not None and not isinstance(self.tracer, Tracer):
            raise ValidationError(
                f"tracer must be a repro.trace.Tracer, got "
                f"{type(self.tracer).__name__}"
            )
        if self.allocation == DYNAMIC_ALLOCATION:
            executor_cls = EXECUTORS.get(self.effective_backend)
            if executor_cls is not None and not getattr(
                executor_cls, "supports_dynamic_allocation", False
            ):
                raise ValidationError(
                    f"backend {self.effective_backend!r} does not support "
                    f"dynamic allocation (executor "
                    f"{executor_cls.__name__} opts out via "
                    f"supports_dynamic_allocation)"
                )
        if self.cache_size is not None and self.cache_size < 1:
            raise ValidationError(
                f"cache_size must be >= 1, got {self.cache_size}"
            )
        if self.cache_ttl is not None and self.cache_ttl <= 0:
            raise ValidationError(
                f"cache_ttl must be positive, got {self.cache_ttl}"
            )
        if self.cache_shards is not None and self.cache_shards < 1:
            raise ValidationError(
                f"cache_shards must be >= 1, got {self.cache_shards}"
            )
        if self.admission_limit is not None and self.admission_limit < 1:
            raise ValidationError(
                f"admission_limit must be >= 1, got {self.admission_limit}"
            )
        if self.quota_rate is not None and self.quota_rate <= 0:
            raise ValidationError(
                f"quota_rate must be positive, got {self.quota_rate}"
            )
        if self.quota_burst is not None:
            if self.quota_burst < 1:
                raise ValidationError(
                    f"quota_burst must be >= 1, got {self.quota_burst}"
                )
            if self.quota_rate is None:
                raise ValidationError(
                    "quota_burst requires quota_rate (a bucket capacity "
                    "without a refill rate never admits anything)"
                )
        if self.mqo_min_core is not None:
            if self.mqo_min_core < 2:
                raise ValidationError(
                    f"mqo_min_core must be >= 2 (a shared core is at "
                    f"least one join), got {self.mqo_min_core}"
                )
            if not self.mqo:
                raise ValidationError(
                    "mqo_min_core requires mqo=True (a core-size floor "
                    "without multi-query sharing does nothing)"
                )
        if self.service_workers is not None and self.service_workers < 1:
            raise ValidationError(
                f"service_workers must be >= 1, got {self.service_workers}"
            )
        if self.request_timeout is not None and self.request_timeout <= 0:
            raise ValidationError(
                f"request_timeout must be positive, got "
                f"{self.request_timeout}"
            )
        if (
            self.fallback_algorithm is not None
            and self.fallback_algorithm not in HEURISTIC_NAMES
        ):
            raise ValidationError(
                f"fallback_algorithm {self.fallback_algorithm!r} is not a "
                f"heuristic; expected one of {list(HEURISTIC_NAMES)}"
            )
        if self.retry_limit is not None and self.retry_limit < 0:
            raise ValidationError(
                f"retry_limit must be >= 0, got {self.retry_limit}"
            )
        if self.retry_backoff is not None and self.retry_backoff < 0:
            raise ValidationError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.fault_plan is not None:
            from repro.faults import FaultInjector

            if isinstance(self.fault_plan, str):
                FaultInjector.from_plan(self.fault_plan)  # validate eagerly
            elif not isinstance(self.fault_plan, FaultInjector):
                raise ValidationError(
                    f"fault_plan must be a plan string or a FaultInjector, "
                    f"got {type(self.fault_plan).__name__}"
                )

    # -- resolved values ------------------------------------------------

    @property
    def is_parallel(self) -> bool:
        """True when the parallel framework will run this config."""
        return self.threads is not None

    @property
    def effective_backend(self) -> str:
        """Backend with the default applied."""
        return self.backend if self.backend is not None else DEFAULT_BACKEND

    @property
    def effective_allocation(self) -> str:
        """Allocation scheme with the default applied."""
        return (
            self.allocation
            if self.allocation is not None
            else DEFAULT_ALLOCATION
        )

    @property
    def effective_oversubscription(self) -> int:
        """Oversubscription with the default applied."""
        return (
            self.oversubscription
            if self.oversubscription is not None
            else DEFAULT_OVERSUBSCRIPTION
        )

    @property
    def effective_tracer(self) -> Tracer:
        """Tracer with the null default applied."""
        return self.tracer if self.tracer is not None else NULL_TRACER

    @property
    def effective_cache_size(self) -> int:
        """Plan-cache capacity with the default applied."""
        return (
            self.cache_size
            if self.cache_size is not None
            else DEFAULT_CACHE_SIZE
        )

    @property
    def effective_cache_shards(self) -> int:
        """Plan-cache shard count with the default applied."""
        return (
            self.cache_shards
            if self.cache_shards is not None
            else DEFAULT_CACHE_SHARDS
        )

    @property
    def effective_quota_burst(self) -> int | None:
        """Token-bucket capacity with the default derivation applied
        (``None`` when quotas are disabled)."""
        if self.quota_rate is None:
            return None
        if self.quota_burst is not None:
            return self.quota_burst
        return max(1, int(self.quota_rate))

    @property
    def effective_mqo_min_core(self) -> int:
        """Shared-core size floor with the default applied."""
        return (
            self.mqo_min_core
            if self.mqo_min_core is not None
            else DEFAULT_MQO_MIN_CORE
        )

    @property
    def effective_service_workers(self) -> int:
        """Service worker-pool size with the default applied."""
        return (
            self.service_workers
            if self.service_workers is not None
            else DEFAULT_SERVICE_WORKERS
        )

    @property
    def effective_fallback_algorithm(self) -> str:
        """Deadline-fallback heuristic with the default applied."""
        return (
            self.fallback_algorithm
            if self.fallback_algorithm is not None
            else DEFAULT_FALLBACK_ALGORITHM
        )

    @property
    def effective_cluster_workers(self) -> int | None:
        """Cluster worker count: address-list length, explicit knob, or
        ``threads``; ``None`` when this is not a cluster config."""
        if self.effective_backend != "cluster":
            return None
        if self.cluster_connect:
            return len(self.cluster_connect)
        if self.cluster_workers is not None:
            return self.cluster_workers
        return self.threads

    @property
    def effective_hybrid_core_cap(self) -> int:
        """Hybrid core-size cap with the default applied."""
        from repro.query.decompose import DEFAULT_CORE_CAP

        return (
            self.hybrid_core_cap
            if self.hybrid_core_cap is not None
            else DEFAULT_CORE_CAP
        )

    @property
    def effective_hybrid_density(self) -> float:
        """Hybrid density threshold with the default applied."""
        from repro.query.decompose import DEFAULT_DENSITY_THRESHOLD

        return (
            self.hybrid_density
            if self.hybrid_density is not None
            else DEFAULT_DENSITY_THRESHOLD
        )

    @property
    def effective_hybrid_dp(self) -> str:
        """Hybrid per-core DP kernel with the default applied."""
        return (
            self.hybrid_dp
            if self.hybrid_dp is not None
            else DEFAULT_HYBRID_DP
        )

    @property
    def effective_retry_limit(self) -> int:
        """Fault-recovery retry budget with the default applied."""
        return (
            self.retry_limit
            if self.retry_limit is not None
            else DEFAULT_RETRY_LIMIT
        )

    @property
    def effective_retry_backoff(self) -> float:
        """Retry backoff base with the default applied."""
        return (
            self.retry_backoff
            if self.retry_backoff is not None
            else DEFAULT_RETRY_BACKOFF
        )

    # -- cached derivations ---------------------------------------------
    # The config is frozen, so anything derived from it is computed once
    # and reused by every optimize() call that carries the same config.
    # (functools.cached_property writes straight into the instance
    # __dict__, which bypasses the frozen dataclass's __setattr__.)

    @cached_property
    def effective_cost_model(self) -> CostModel:
        """Cost model with the default applied — one instance per config.

        Previously every ``optimize()`` call on a default-cost-model
        config constructed a fresh ``StandardCostModel``; hoisting the
        instantiation here makes repeated calls with one frozen config
        reuse a single instance (cost models are stateless by contract).
        """
        from repro.cost.model import StandardCostModel

        return (
            self.cost_model
            if self.cost_model is not None
            else StandardCostModel()
        )

    @cached_property
    def effective_fault_injector(self):
        """The configured fault injector, or the shared disabled one.

        A ``fault_plan`` string is parsed once per config; the null
        injector advertises ``enabled=False`` so every instrumented site
        skips it without a call.
        """
        from repro.faults import NULL_INJECTOR, FaultInjector

        if self.fault_plan is None:
            return NULL_INJECTOR
        if isinstance(self.fault_plan, FaultInjector):
            return self.fault_plan
        return FaultInjector.from_plan(self.fault_plan)

    @cached_property
    def digest(self) -> str:
        """Hex digest of every plan-relevant field (cached).

        This is the config component of a query fingerprint
        (:mod:`repro.service.fingerprint`): two configs with the same
        digest are guaranteed to choose the same plan for the same query.
        Excluded by construction: the tracer (observability never changes
        the plan), the service knobs (they size the serving layer, not
        the search), the fault-tolerance knobs (recovery reproduces
        the exact optimum or degrades without caching), and the
        result-invariant execution knobs ``shared_memo``/``vectorize``
        (bit-identical by the parity harness).
        """
        excluded = (
            set(_SERVICE_ONLY)
            | set(_ROBUSTNESS)
            | set(_RESULT_INVARIANT)
            | set(_CLUSTER)
            | {"tracer", "cost_model"}
        )
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in dataclass_fields(self)
            if f.name not in excluded
        ]
        parts.append(f"cost_model={self.effective_cost_model!r}")
        payload = "|".join(["repro.config.v1", *parts])
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    @cached_property
    def runner(self):
        """The optimizer instance this config dispatches to (cached).

        Resolved once per config: repeated :func:`repro.optimize` calls
        with the same frozen config reuse one optimizer object instead of
        re-consulting the registries and re-constructing it.  Safe
        because every optimizer in the repo is stateless across
        ``optimize()`` calls (run state lives in per-call locals; the
        randomized heuristics derive a fresh RNG from their seed each
        call).
        """
        if self.algorithm == HYBRID_NAME:
            from repro.hybrid import HybridOptimizer

            return HybridOptimizer(config=self)
        if self.is_parallel:
            from repro.parallel.scheduler import ParallelDP

            return ParallelDP(config=self)
        if self.algorithm in SERIAL_ALGORITHMS:
            return SERIAL_ALGORITHMS[self.algorithm](
                cross_products=self.cross_products,
                tracer=self.effective_tracer,
                fast_path=self.fast_path,
                vectorize=self.vectorize,
            )
        if self.algorithm == "dpsva":
            from repro.sva.dpsva import DPsva

            return DPsva(
                cross_products=self.cross_products,
                tracer=self.effective_tracer,
                fast_path=self.fast_path,
                vectorize=self.vectorize,
            )
        if self.algorithm == "exhaustive":
            from repro.enumerate.exhaustive import ExhaustiveEnumerator

            return ExhaustiveEnumerator(cross_products=self.cross_products)
        if self.algorithm == "goo":
            return HEURISTICS["goo"](cross_products=self.cross_products)
        return HEURISTICS[self.algorithm]()

    @property
    def runner_self_traced(self) -> bool:
        """True when :attr:`runner` emits its own ``optimize`` span and
        attaches the trace itself (parallel framework and the stratified
        serial DP enumerators); the front door wraps the others."""
        return (
            self.is_parallel
            or self.algorithm == HYBRID_NAME
            or self.algorithm in SERIAL_ALGORITHMS
            or self.algorithm == "dpsva"
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def from_kwargs(cls, **kwargs) -> "OptimizerConfig":
        """Build a config from the legacy keyword-argument surface.

        Accepts exactly the dataclass's field names; anything else fails
        with one :class:`ValidationError` listing the offenders, which is
        what turns the old scattered option checks into a single coherent
        failure mode.
        """
        fields = cls.__dataclass_fields__
        unknown = sorted(set(kwargs) - set(fields))
        if unknown:
            raise ValidationError(
                f"unknown optimizer options {unknown}; valid options are "
                f"{sorted(fields)}"
            )
        return cls(**kwargs)

    def with_options(self, **changes) -> "OptimizerConfig":
        """Functional update: a new validated config with fields replaced."""
        return replace(self, **changes)
