"""The optimizer configuration object — the library's redesigned front
door.

:class:`OptimizerConfig` gathers every knob :func:`repro.optimize` and
:class:`~repro.parallel.scheduler.ParallelDP` understand into one frozen,
validated dataclass.  Parallel-only options (``backend``, ``allocation``,
``oversubscription``, ``sim_params``) default to ``None`` meaning *unset*;
effective values are resolved through the ``effective_*`` properties, and
setting any of them without ``threads`` is rejected in ``__post_init__``
with a single coherent :class:`~repro.util.errors.ValidationError` —
replacing the ad-hoc ``threads is None`` checks that used to be scattered
across the call sites.

The legacy keyword path (``optimize(query, algorithm=..., threads=...)``)
still works: it is a thin shim over :meth:`OptimizerConfig.from_kwargs`.
New code should construct the config directly::

    from repro import OptimizerConfig, RecordingTracer, optimize

    config = OptimizerConfig(
        algorithm="dpsva", threads=8, tracer=RecordingTracer()
    )
    result = optimize(query, config=config)
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cost.model import CostModel
from repro.enumerate import SERIAL_ALGORITHMS
from repro.heuristics import HEURISTICS
from repro.parallel.allocation import ALLOCATION_SCHEMES, DYNAMIC_ALLOCATION
from repro.parallel.executors import EXECUTORS
from repro.parallel.workunits import PARALLEL_ALGORITHMS
from repro.simx.costparams import SimCostParams
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.util.errors import ValidationError

SERIAL_NAMES = tuple(sorted(SERIAL_ALGORITHMS)) + ("dpsva", "exhaustive")
"""Serial exact algorithms accepted by ``algorithm``."""

HEURISTIC_NAMES = tuple(sorted(HEURISTICS))
"""Heuristic algorithms accepted by ``algorithm``."""

ALL_ALGORITHMS = tuple(sorted(set(SERIAL_NAMES) | set(HEURISTIC_NAMES)))
"""Every algorithm name the front door accepts."""

_PARALLEL_ONLY = ("backend", "allocation", "oversubscription", "sim_params")

DEFAULT_BACKEND = "simulated"
DEFAULT_ALLOCATION = "equi_depth"
DEFAULT_OVERSUBSCRIPTION = 4


@dataclass(frozen=True)
class OptimizerConfig:
    """Validated, immutable description of one optimization setup.

    Attributes:
        algorithm: Enumerator or heuristic name (see
            :data:`ALL_ALGORITHMS`).
        threads: Degree of parallelism; ``None`` selects the serial path.
        backend: Executor substrate for parallel runs (``simulated`` /
            ``threads`` / ``processes``); ``None`` = default.
        allocation: Work-unit allocation scheme; ``None`` = default.
        cost_model: Cost model instance; ``None`` = ``StandardCostModel``.
        cross_products: Admit cross-product joins.
        oversubscription: Work units per thread per stratum split
            (parallel runs); ``None`` = default.
        sim_params: Virtual cost parameters for the simulated backend.
        tracer: Observability sink (:mod:`repro.trace`); ``None`` disables
            tracing at zero cost.
    """

    algorithm: str = "dpsize"
    threads: int | None = None
    backend: str | None = None
    allocation: str | None = None
    cost_model: CostModel | None = None
    cross_products: bool = False
    oversubscription: int | None = None
    sim_params: SimCostParams | None = None
    tracer: Tracer | None = None

    def __post_init__(self) -> None:
        if self.algorithm not in ALL_ALGORITHMS:
            raise ValidationError(
                f"unknown algorithm {self.algorithm!r}; expected one of "
                f"{list(ALL_ALGORITHMS)}"
            )
        if self.threads is not None:
            if self.threads < 1:
                raise ValidationError(
                    f"threads must be >= 1, got {self.threads}"
                )
            if self.algorithm not in PARALLEL_ALGORITHMS:
                raise ValidationError(
                    f"algorithm {self.algorithm!r} has no parallel kernel; "
                    f"threads= requires one of {list(PARALLEL_ALGORITHMS)}"
                )
        else:
            set_options = [
                name
                for name in _PARALLEL_ONLY
                if getattr(self, name) is not None
            ]
            if set_options:
                raise ValidationError(
                    f"options {set_options} only apply to parallel runs; "
                    f"set threads= (or drop them)"
                )
        if self.backend is not None and self.backend not in EXECUTORS:
            raise ValidationError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{sorted(EXECUTORS)}"
            )
        valid_allocations = sorted(ALLOCATION_SCHEMES) + [DYNAMIC_ALLOCATION]
        if (
            self.allocation is not None
            and self.allocation not in valid_allocations
        ):
            raise ValidationError(
                f"unknown allocation scheme {self.allocation!r}; expected "
                f"one of {valid_allocations}"
            )
        if self.oversubscription is not None and self.oversubscription < 1:
            raise ValidationError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )
        if self.tracer is not None and not isinstance(self.tracer, Tracer):
            raise ValidationError(
                f"tracer must be a repro.trace.Tracer, got "
                f"{type(self.tracer).__name__}"
            )
        if (
            self.allocation == DYNAMIC_ALLOCATION
            and self.effective_backend != "simulated"
        ):
            raise ValidationError(
                "dynamic allocation is only supported by the simulated "
                "backend"
            )

    # -- resolved values ------------------------------------------------

    @property
    def is_parallel(self) -> bool:
        """True when the parallel framework will run this config."""
        return self.threads is not None

    @property
    def effective_backend(self) -> str:
        """Backend with the default applied."""
        return self.backend if self.backend is not None else DEFAULT_BACKEND

    @property
    def effective_allocation(self) -> str:
        """Allocation scheme with the default applied."""
        return (
            self.allocation
            if self.allocation is not None
            else DEFAULT_ALLOCATION
        )

    @property
    def effective_oversubscription(self) -> int:
        """Oversubscription with the default applied."""
        return (
            self.oversubscription
            if self.oversubscription is not None
            else DEFAULT_OVERSUBSCRIPTION
        )

    @property
    def effective_tracer(self) -> Tracer:
        """Tracer with the null default applied."""
        return self.tracer if self.tracer is not None else NULL_TRACER

    # -- construction ---------------------------------------------------

    @classmethod
    def from_kwargs(cls, **kwargs) -> "OptimizerConfig":
        """Build a config from the legacy keyword-argument surface.

        Accepts exactly the dataclass's field names; anything else fails
        with one :class:`ValidationError` listing the offenders, which is
        what turns the old scattered option checks into a single coherent
        failure mode.
        """
        fields = cls.__dataclass_fields__
        unknown = sorted(set(kwargs) - set(fields))
        if unknown:
            raise ValidationError(
                f"unknown optimizer options {unknown}; valid options are "
                f"{sorted(fields)}"
            )
        return cls(**kwargs)

    def with_options(self, **changes) -> "OptimizerConfig":
        """Functional update: a new validated config with fields replaced."""
        return replace(self, **changes)
