"""Convenience entry points for the SQL frontend."""

from __future__ import annotations

from repro.catalog.model import Catalog
from repro.query.joingraph import Query
from repro.sql.binder import bind
from repro.sql.parser import parse_select


def sql_to_query(sql: str, catalog: Catalog, label: str = "sql") -> Query:
    """Parse and bind an SPJ SELECT statement into a Query."""
    return bind(parse_select(sql), catalog, label=label)


def optimize_sql(sql: str, catalog: Catalog, **optimize_options):
    """Parse, bind, and optimize in one call.

    Keyword options are forwarded to :func:`repro.optimize`
    (``algorithm``, ``threads``, ``cost_model``, ``cross_products``, …).
    """
    from repro import optimize

    query = sql_to_query(sql, catalog)
    if not query.graph.is_connected():
        optimize_options.setdefault("cross_products", True)
    return optimize(query, **optimize_options)
