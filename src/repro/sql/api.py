"""Convenience entry points for the SQL frontend."""

from __future__ import annotations

from repro.catalog.model import Catalog
from repro.query.joingraph import Query
from repro.sql.binder import bind
from repro.sql.parser import parse_select


def sql_to_query(sql: str, catalog: Catalog, label: str = "sql") -> Query:
    """Parse and bind an SPJ SELECT statement into a Query."""
    return bind(parse_select(sql), catalog, label=label)


def optimize_sql(
    sql: str, catalog: Catalog, label: str = "sql", **optimize_options
):
    """Parse, bind, and optimize in one call.

    Args:
        sql: An SPJ ``SELECT`` statement.
        catalog: Catalog the statement binds against.
        label: Query label carried onto the bound
            :class:`~repro.query.joingraph.Query` (visible in reports).
        **optimize_options: Either a ready-made ``config=``
            (:class:`~repro.config.OptimizerConfig`) or the individual
            optimizer options (``algorithm``, ``threads``,
            ``cost_model``, ``cross_products``, …), which are folded
            into a config here — never through the deprecated
            :func:`repro.optimize` keyword shim.
    """
    from repro import optimize
    from repro.config import OptimizerConfig
    from repro.util.errors import ValidationError

    query = sql_to_query(sql, catalog, label=label)
    config = optimize_options.pop("config", None)
    if config is not None:
        if optimize_options:
            raise ValidationError(
                "pass either config= or individual optimizer options, "
                "not both"
            )
    else:
        config = OptimizerConfig.from_kwargs(**optimize_options)
    forced_cross_products = False
    if not query.graph.is_connected() and not config.cross_products:
        # No join predicate linking every relation: the exact enumerators
        # would find no complete plan, so admit cross products.  The
        # override is recorded (extras + trace counter) rather than
        # applied silently, so the resulting plan stays explainable.
        config = config.with_options(cross_products=True)
        forced_cross_products = True
        config.effective_tracer.counter(
            "sql.cross_products_forced", 1, label=label
        )
    result = optimize(query, config=config)
    if forced_cross_products:
        result.extras["cross_products_forced"] = True
    return result
