"""Convenience entry points for the SQL frontend."""

from __future__ import annotations

from repro.catalog.model import Catalog
from repro.query.joingraph import Query
from repro.sql.binder import bind
from repro.sql.parser import parse_select


def sql_to_query(sql: str, catalog: Catalog, label: str = "sql") -> Query:
    """Parse and bind an SPJ SELECT statement into a Query."""
    return bind(parse_select(sql), catalog, label=label)


def optimize_sql(
    sql: str, catalog: Catalog, label: str = "sql", **optimize_options
):
    """Parse, bind, and optimize in one call.

    Args:
        sql: An SPJ ``SELECT`` statement.
        catalog: Catalog the statement binds against.
        label: Query label carried onto the bound
            :class:`~repro.query.joingraph.Query` (visible in reports).
        **optimize_options: Forwarded to :func:`repro.optimize`
            (``algorithm``, ``threads``, ``cost_model``,
            ``cross_products``, ``config``, …).
    """
    from repro import optimize

    query = sql_to_query(sql, catalog, label=label)
    if not query.graph.is_connected():
        config = optimize_options.get("config")
        if config is not None:
            if not config.cross_products:
                optimize_options["config"] = config.with_options(
                    cross_products=True
                )
        else:
            optimize_options.setdefault("cross_products", True)
    return optimize(query, **optimize_options)
