"""Binding: resolve a parsed statement against a catalog into a Query.

Selectivity derivation follows System R:

* join predicate ``a.x = b.y`` → ``1 / max(d(a.x), d(b.y))`` where ``d``
  is the column's distinct count; multiple predicates on the same
  relation pair multiply (clamped into ``(0, 1]``).
* local predicate ``a.x = literal`` → the relation's effective
  cardinality becomes ``max(1, |a| / d(a.x))``.
"""

from __future__ import annotations

from repro.catalog.model import Catalog
from repro.query.joingraph import JoinGraph, Query
from repro.sql.parser import ColumnRef, SelectStatement
from repro.util.errors import ValidationError


def _resolve_column(catalog: Catalog, alias_tables, ref: ColumnRef):
    """Return (relation index, Column) for an ``alias.column`` reference."""
    if ref.table not in alias_tables:
        raise ValidationError(f"unknown relation alias {ref.table!r}")
    index, table_name = alias_tables[ref.table]
    table = catalog.table(table_name)
    try:
        column = table.column(ref.column)
    except KeyError:
        raise ValidationError(
            f"table {table_name!r} (alias {ref.table!r}) has no column "
            f"{ref.column!r}"
        ) from None
    return index, column


def bind(statement: SelectStatement, catalog: Catalog, label: str = "sql") -> Query:
    """Bind ``statement`` against ``catalog`` and return a Query."""
    if not statement.relations:
        raise ValidationError("FROM list is empty")
    alias_tables: dict[str, tuple[int, str]] = {}
    for index, item in enumerate(statement.relations):
        if item.table not in catalog:
            raise ValidationError(f"unknown table {item.table!r}")
        if item.alias in alias_tables:
            # A silent overwrite would resolve every ``alias.x`` reference
            # against the *last* relation and emit duplicate relation
            # names — reject instead, naming the offending alias.
            raise ValidationError(
                f"duplicate relation alias {item.alias!r} in FROM list"
            )
        alias_tables[item.alias] = (index, item.table)

    n = len(statement.relations)
    cardinalities = [
        float(catalog.table(item.table).cardinality)
        for item in statement.relations
    ]

    # Local predicates scale effective cardinalities.
    for predicate in statement.filters:
        index, column = _resolve_column(catalog, alias_tables, predicate.column)
        cardinalities[index] = max(
            1.0, cardinalities[index] / column.distinct_count
        )

    # Join predicates become edges; parallel predicates multiply.
    edge_selectivity: dict[tuple[int, int], float] = {}
    for predicate in statement.joins:
        li, lcol = _resolve_column(catalog, alias_tables, predicate.left)
        ri, rcol = _resolve_column(catalog, alias_tables, predicate.right)
        if li == ri:
            raise ValidationError(
                f"predicate {predicate.left} = {predicate.right} "
                "compares a relation with itself"
            )
        key = (li, ri) if li < ri else (ri, li)
        selectivity = 1.0 / max(lcol.distinct_count, rcol.distinct_count)
        edge_selectivity[key] = max(
            1e-12, edge_selectivity.get(key, 1.0) * selectivity
        )

    graph = JoinGraph(
        n, [(u, v, s) for (u, v), s in sorted(edge_selectivity.items())]
    )
    return Query(
        graph=graph,
        relation_names=tuple(item.alias for item in statement.relations),
        cardinalities=tuple(cardinalities),
        label=label,
    )
