"""Tokenizer for the SQL subset."""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ReproError


class LexError(ReproError):
    """Input could not be tokenized."""


KEYWORDS = {"select", "from", "where", "and", "join", "on", "as", "inner"}

PUNCTUATION = {",", "=", "*", "(", ")", ".", ";"}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``keyword``, ``name``, ``number``, ``string``,
    ``punct``, ``eof``; ``text`` is the raw (keywords lowercased) text and
    ``pos`` the character offset for error messages.
    """

    kind: str
    text: str
    pos: int


def tokenize(sql: str) -> list[Token]:
    """Tokenize ``sql``; always ends with an ``eof`` token."""
    tokens: list[Token] = []
    i = 0
    length = len(sql)
    while i < length:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch in PUNCTUATION:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        if ch == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise LexError(f"unterminated string literal at {i}")
            tokens.append(Token("string", sql[i + 1 : end], i))
            i = end + 1
            continue
        if ch.isdigit() or (
            ch == "-" and i + 1 < length and sql[i + 1].isdigit()
        ):
            j = i + 1
            while j < length and (sql[j].isdigit() or sql[j] == "."):
                j += 1
            tokens.append(Token("number", sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < length and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, i))
            else:
                tokens.append(Token("name", word, i))
            i = j
            continue
        raise LexError(f"unexpected character {ch!r} at {i}")
    tokens.append(Token("eof", "", length))
    return tokens
