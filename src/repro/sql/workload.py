"""Seeded SQL workloads over the TPC-H-style schema.

A :class:`SqlWorkloadSpec` describes a *batch* of SPJ SELECT statements
with controllable overlap: a shared **join core** (a connected set of
foreign-key joins plus a shared filter set, identical in every sharing
member) that a configurable fraction of the batch contains, with each
member extended by its own random foreign-key walk and private filters.
This produces batches with measurable common subexpressions — the input
the multi-query optimizer (:mod:`repro.service.mqo`) exploits — while
non-sharing members exercise the no-reuse path.

Overlap is engineered precisely:

* Core members use the same core tables, join predicates, and filter
  literals, so the core's induced subquery fingerprints identically in
  every member (same System-R cardinalities and selectivities).
* Private extensions attach through foreign keys *outside* the core and
  private filters land only on non-core relations — the core's effective
  statistics stay untouched.

Everything is deterministic in ``(spec, index)`` via
:func:`repro.util.rng.spawn_seed`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field, replace

from repro.catalog.model import Catalog
from repro.catalog.tpch import (
    TABLE_NAMES,
    adjacent_tables,
    filter_columns,
    join_predicate,
    tpch_catalog,
)
from repro.query.joingraph import Query
from repro.util.errors import ValidationError
from repro.util.rng import derive_rng


@dataclass(frozen=True, slots=True)
class SqlWorkloadSpec:
    """Description of a batch of overlapping SQL queries.

    Attributes:
        seed: Master seed; the core and each member derive child streams.
        count: Number of statements in the batch.
        core_tables: Size of the shared join core (≥ 2 enables sharing).
        overlap: Fraction of the batch containing the core; the first
            ``round(overlap * count)`` members share it, the rest are
            independent random queries.
        extra_tables: Inclusive ``(lo, hi)`` range of per-member
            foreign-key extensions beyond the core.
        core_filters: Number of shared local predicates on core tables
            (identical literals across members).
        member_filters: Inclusive ``(lo, hi)`` range of private local
            predicates on non-core tables per member.
        scale: TPC-H scale fraction passed to
            :func:`~repro.catalog.tpch.tpch_catalog`.
    """

    seed: int = 0
    count: int = 8
    core_tables: int = 4
    overlap: float = 1.0
    extra_tables: tuple[int, int] = (1, 2)
    core_filters: int = 1
    member_filters: tuple[int, int] = (0, 2)
    scale: float = 0.01

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValidationError("count must be >= 1")
        if not 2 <= self.core_tables <= len(TABLE_NAMES):
            raise ValidationError(
                f"core_tables must be in [2, {len(TABLE_NAMES)}]"
            )
        if not 0.0 <= self.overlap <= 1.0:
            raise ValidationError("overlap must be in [0, 1]")
        lo, hi = self.extra_tables
        if not 0 <= lo <= hi:
            raise ValidationError("extra_tables range must be 0 <= lo <= hi")
        if self.core_tables + hi > len(TABLE_NAMES):
            raise ValidationError(
                "core_tables + max extra_tables exceeds the schema's "
                f"{len(TABLE_NAMES)} tables"
            )
        flo, fhi = self.member_filters
        if not 0 <= flo <= fhi:
            raise ValidationError("member_filters range must be 0 <= lo <= hi")
        if self.core_filters < 0:
            raise ValidationError("core_filters must be >= 0")
        if self.scale <= 0:
            raise ValidationError("scale must be positive")

    def with_count(self, count: int) -> "SqlWorkloadSpec":
        """Copy of this spec with a different member count."""
        return replace(self, count=count)

    @property
    def core_members(self) -> int:
        """How many members of the batch contain the shared core."""
        return round(self.overlap * self.count)


@dataclass(frozen=True, slots=True)
class GeneratedStatement:
    """One generated batch member: SQL text plus provenance.

    Attributes:
        index: Position in the batch.
        sql: The SELECT statement.
        tables: Tables referenced, in FROM order (each at most once, so
            aliases equal table names).
        core_member: Whether this member embeds the shared join core.
        core_tables: The core's tables (empty for non-members).
    """

    index: int
    sql: str
    tables: tuple[str, ...] = ()
    core_member: bool = False
    core_tables: tuple[str, ...] = ()


def _fk_walk(rng, size: int, exclude: frozenset[str] = frozenset(),
             start: list[str] | None = None) -> tuple[list[str], list[str]]:
    """Grow a connected table set along foreign keys.

    Returns ``(tables, predicates)`` where each predicate is SQL text
    joining a newly added table to an already-chosen neighbour.  The walk
    is deterministic in ``rng`` and never revisits a table or enters
    ``exclude``.
    """
    tables: list[str] = list(start or ())
    predicates: list[str] = []
    if not tables:
        candidates = sorted(
            t for t in TABLE_NAMES
            if t not in exclude and adjacent_tables(t)
        )
        tables.append(rng.choice(candidates))
    while len(tables) < size:
        frontier = sorted(
            (anchor, nxt)
            for anchor in tables
            for nxt in adjacent_tables(anchor)
            if nxt not in tables and nxt not in exclude
        )
        if not frontier:
            break  # schema exhausted; caller tolerates shorter walks
        anchor, nxt = rng.choice(frontier)
        pred = join_predicate(anchor, nxt)
        assert pred is not None
        predicates.append(f"{anchor}.{pred[0]} = {nxt}.{pred[1]}")
        tables.append(nxt)
    return tables, predicates


def _filters(rng, tables: list[str], count: int) -> list[str]:
    """Draw ``count`` local equality predicates on attribute columns."""
    pool = sorted(
        (table, column) for table in tables for column in filter_columns(table)
    )
    out: list[str] = []
    if not pool:
        return out
    picks = rng.sample(pool, min(count, len(pool)))
    for table, column in picks:
        out.append(f"{table}.{column} = {rng.randrange(1, 100)}")
    return out


def _core(spec: SqlWorkloadSpec) -> tuple[list[str], list[str], list[str]]:
    """The shared core: ``(tables, join predicates, filter predicates)``."""
    rng = derive_rng(spec.seed, "sql-workload", "core")
    tables, joins = _fk_walk(rng, spec.core_tables)
    filters = _filters(rng, tables, spec.core_filters)
    return tables, joins, filters


def generate_statement(
    spec: SqlWorkloadSpec, index: int
) -> GeneratedStatement:
    """Generate the ``index``-th statement of the batch, deterministically."""
    if not 0 <= index < spec.count:
        raise ValidationError(
            f"statement index {index} out of range for count={spec.count}"
        )
    rng = derive_rng(spec.seed, "sql-workload", "member", index)
    is_core = index < spec.core_members
    core_tables: list[str] = []
    if is_core:
        core_tables, joins, filters = _core(spec)
        tables = list(core_tables)
        extra = rng.randint(*spec.extra_tables)
        grown, extra_joins = _fk_walk(
            rng, len(tables) + extra, start=tables
        )
        new_tables = grown[len(core_tables):]
        joins = joins + extra_joins
        # Private filters only touch non-core tables, so the core's
        # effective cardinalities are identical across members.
        filters = filters + _filters(
            rng, new_tables, rng.randint(*spec.member_filters)
        )
        tables = grown
    else:
        size = spec.core_tables + rng.randint(*spec.extra_tables)
        tables, joins = _fk_walk(rng, size)
        filters = _filters(rng, tables, rng.randint(*spec.member_filters))

    where = " AND ".join(joins + filters)
    sql = f"SELECT * FROM {', '.join(tables)}"
    if where:
        sql += f" WHERE {where}"
    return GeneratedStatement(
        index=index,
        sql=sql,
        tables=tuple(tables),
        core_member=is_core and bool(core_tables),
        core_tables=tuple(core_tables),
    )


class SqlWorkload:
    """A reproducible batch of SQL statements from one spec.

    Iterates :class:`GeneratedStatement` objects; :meth:`queries` binds
    the whole batch against the spec's TPC-H catalog in one call.
    """

    def __init__(
        self, spec: SqlWorkloadSpec, catalog: Catalog | None = None
    ) -> None:
        self.spec = spec
        self.catalog = catalog if catalog is not None else tpch_catalog(
            spec.scale
        )

    def __len__(self) -> int:
        return self.spec.count

    def __iter__(self) -> Iterator[GeneratedStatement]:
        for index in range(self.spec.count):
            yield generate_statement(self.spec, index)

    def __getitem__(self, index: int) -> GeneratedStatement:
        return generate_statement(self.spec, index)

    def statements(self) -> list[str]:
        """The batch's SQL texts, in order."""
        return [item.sql for item in self]

    def queries(self) -> list[Query]:
        """Parse and bind every statement into a :class:`Query`."""
        from repro.sql.api import sql_to_query

        return [
            sql_to_query(
                item.sql, self.catalog, label=f"sqlwl-s{self.spec.seed}-q{item.index}"
            )
            for item in self
        ]

    def __repr__(self) -> str:
        s = self.spec
        return (
            f"SqlWorkload(count={s.count}, core={s.core_tables}, "
            f"overlap={s.overlap}, seed={s.seed})"
        )
