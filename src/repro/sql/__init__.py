"""SQL frontend: parse SPJ queries into the optimizer's query model.

Supports the select-project-join subset the optimizers operate on::

    SELECT * FROM orders o, lineitem l, part p
    WHERE o.c0 = l.c1 AND l.c2 = p.c0 AND p.c3 = 42

* ``FROM`` lists relations with optional aliases; two aliases of the same
  catalog table become two independent relations (self-joins).
* Join predicates (``a.x = b.y``) become join-graph edges; selectivity is
  derived from catalog distinct counts as ``1 / max(d(a.x), d(b.y))``,
  the classic System-R estimate.  Multiple predicates between the same
  pair multiply.
* Local predicates (``a.x = <literal>``) scale the relation's effective
  cardinality by ``1 / d(a.x)``.
* Explicit ``JOIN … ON`` syntax is accepted as sugar for the same thing.

:func:`optimize_sql` is the one-call convenience wrapper.
"""

from repro.sql.binder import bind
from repro.sql.parser import ParseError, SelectStatement, parse_select
from repro.sql.api import optimize_sql, sql_to_query
from repro.sql.workload import (
    GeneratedStatement,
    SqlWorkload,
    SqlWorkloadSpec,
    generate_statement,
)

__all__ = [
    "ParseError",
    "SelectStatement",
    "parse_select",
    "bind",
    "sql_to_query",
    "optimize_sql",
    "SqlWorkload",
    "SqlWorkloadSpec",
    "GeneratedStatement",
    "generate_statement",
]
