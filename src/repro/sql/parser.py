"""Recursive-descent parser for the SPJ subset.

Grammar::

    select    := SELECT '*' FROM from_list [WHERE conjunct] [';']
    from_list := from_item ((',' | [INNER] JOIN) from_item [ON conjunct])*
    from_item := name [[AS] name]
    conjunct  := predicate (AND predicate)*
    predicate := colref '=' (colref | literal)
    colref    := name '.' name
    literal   := number | string

``JOIN … ON`` and comma-plus-``WHERE`` are normalized into the same AST:
a relation list plus a flat conjunction of predicates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.lexer import Token, tokenize
from repro.util.errors import ReproError


class ParseError(ReproError):
    """The SQL text does not match the supported subset."""


@dataclass(frozen=True, slots=True)
class ColumnRef:
    """``alias.column`` reference."""

    table: str
    column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column}"


@dataclass(frozen=True, slots=True)
class JoinPredicate:
    """Equality between two column references."""

    left: ColumnRef
    right: ColumnRef


@dataclass(frozen=True, slots=True)
class LocalPredicate:
    """Equality between a column reference and a literal."""

    column: ColumnRef
    value: str


@dataclass(frozen=True, slots=True)
class FromItem:
    """A relation in the FROM list: catalog table name plus alias."""

    table: str
    alias: str


@dataclass
class SelectStatement:
    """Normalized SPJ statement."""

    relations: list[FromItem] = field(default_factory=list)
    joins: list[JoinPredicate] = field(default_factory=list)
    filters: list[LocalPredicate] = field(default_factory=list)


class _Parser:
    def __init__(self, tokens: list[Token], sql: str) -> None:
        self.tokens = tokens
        self.sql = sql
        self.pos = 0

    # -- token helpers ---------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def error(self, message: str) -> ParseError:
        token = self.peek()
        context = self.sql[max(0, token.pos - 12) : token.pos + 12]
        return ParseError(
            f"{message} at position {token.pos} (near {context!r})"
        )

    def expect(self, kind: str, text: str | None = None) -> Token:
        token = self.peek()
        if token.kind != kind or (text is not None and token.text != text):
            want = text or kind
            raise self.error(f"expected {want!r}, found {token.text!r}")
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (text is None or token.text == text):
            return self.advance()
        return None

    # -- grammar ---------------------------------------------------------

    def parse(self) -> SelectStatement:
        self.expect("keyword", "select")
        self.expect("punct", "*")
        self.expect("keyword", "from")
        stmt = SelectStatement()
        self._from_item(stmt)
        while True:
            if self.accept("punct", ","):
                self._from_item(stmt)
            elif self.peek().text in ("join", "inner"):
                self.accept("keyword", "inner")
                self.expect("keyword", "join")
                self._from_item(stmt)
                if self.accept("keyword", "on"):
                    self._conjunct(stmt)
            else:
                break
        if self.accept("keyword", "where"):
            self._conjunct(stmt)
        self.accept("punct", ";")
        self.expect("eof")
        return stmt

    def _from_item(self, stmt: SelectStatement) -> None:
        table = self.expect("name").text
        alias = table
        if self.accept("keyword", "as"):
            alias = self.expect("name").text
        elif self.peek().kind == "name":
            alias = self.advance().text
        for item in stmt.relations:
            if item.alias == alias:
                raise self.error(f"duplicate alias {alias!r}")
        stmt.relations.append(FromItem(table=table, alias=alias))

    def _conjunct(self, stmt: SelectStatement) -> None:
        while True:
            self._predicate(stmt)
            if not self.accept("keyword", "and"):
                break

    def _predicate(self, stmt: SelectStatement) -> None:
        left = self._colref()
        self.expect("punct", "=")
        token = self.peek()
        if token.kind == "name":
            right = self._colref()
            stmt.joins.append(JoinPredicate(left=left, right=right))
        elif token.kind in ("number", "string"):
            self.advance()
            stmt.filters.append(LocalPredicate(column=left, value=token.text))
        else:
            raise self.error("expected column reference or literal")

    def _colref(self) -> ColumnRef:
        table = self.expect("name").text
        self.expect("punct", ".")
        column = self.expect("name").text
        return ColumnRef(table=table, column=column)


def parse_select(sql: str) -> SelectStatement:
    """Parse one SPJ SELECT statement."""
    return _Parser(tokenize(sql), sql).parse()
