"""In-memory tables for the execution engine."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.errors import ValidationError


@dataclass
class DataTable:
    """A materialized relation.

    Attributes:
        name: Relation name.
        columns: Column names; ``rows[i][j]`` is column ``columns[j]``.
        rows: Tuples, one per row.
    """

    name: str
    columns: list[str]
    rows: list[tuple]

    def __post_init__(self) -> None:
        width = len(self.columns)
        for row in self.rows:
            if len(row) != width:
                raise ValidationError(
                    f"table {self.name!r}: row width {len(row)} != "
                    f"{width} columns"
                )

    def __len__(self) -> int:
        return len(self.rows)

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise KeyError(
                f"table {self.name!r} has no column {column!r}"
            ) from None


@dataclass
class Database:
    """A set of materialized relations keyed by name."""

    tables: dict[str, DataTable] = field(default_factory=dict)

    def add(self, table: DataTable) -> None:
        if table.name in self.tables:
            raise ValidationError(f"duplicate table {table.name!r}")
        self.tables[table.name] = table

    def table(self, name: str) -> DataTable:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"database has no table {name!r}") from None

    def __len__(self) -> int:
        return len(self.tables)
