"""Plan execution engine.

A small in-memory executor that *runs* the plans the optimizers produce:
synthetic tables are generated to match a query's catalog statistics
(:mod:`repro.engine.data`), and plan trees are evaluated bottom-up with
real implementations of all four join operators
(:mod:`repro.engine.operators`).  Every operator computes the same join,
so any two plans for the same query must return the same multiset of
rows — the end-to-end check that an "optimal" plan is still a *correct*
plan, exercised by the tests and the ``end_to_end`` example.

>>> from repro import OptimizerConfig, optimize
>>> from repro.engine import execute_plan, generate_database
>>> from repro.query import WorkloadSpec, generate_query
>>> query = generate_query(WorkloadSpec("chain", 4, seed=1))
>>> database = generate_database(query, seed=1, max_rows=50)
>>> rows = execute_plan(optimize(query).plan, query, database)
>>> ccp = optimize(query, config=OptimizerConfig(algorithm="dpccp"))
>>> rows == execute_plan(ccp.plan, query, database)
True
"""

from repro.engine.data import generate_database
from repro.engine.executor import execute_plan
from repro.engine.tables import DataTable, Database

__all__ = [
    "DataTable",
    "Database",
    "generate_database",
    "execute_plan",
]
