"""Plan execution engine.

A small in-memory executor that *runs* the plans the optimizers produce:
synthetic tables are generated to match a query's catalog statistics
(:mod:`repro.engine.data`), and plan trees are evaluated bottom-up with
real implementations of all four join operators
(:mod:`repro.engine.operators`).  Every operator computes the same join,
so any two plans for the same query must return the same multiset of
rows — the end-to-end check that an "optimal" plan is still a *correct*
plan, exercised by the tests and the ``end_to_end`` example.
"""

from repro.engine.data import generate_database
from repro.engine.executor import execute_plan
from repro.engine.tables import DataTable, Database

__all__ = [
    "DataTable",
    "Database",
    "generate_database",
    "execute_plan",
]
