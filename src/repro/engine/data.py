"""Synthetic data generation matching a query's statistics.

For every join edge ``(u, v)`` with selectivity ``s`` the generator gives
both relations a dedicated join-key column drawn uniformly from a domain
of size ``round(1 / s)``: under independence the expected equi-join
selectivity is then ``1 / domain ≈ s``, so the optimizer's cardinality
estimates approximately predict the real result sizes.

Cardinalities are scaled down to ``max_rows`` (execution is for
correctness validation, not throughput); the *ratios* between table sizes
are preserved, which is what plan choice depends on.  Key domains are
scaled by the same factor so that scaled joins still match (the
foreign-key pattern: a parent table scaled to ``f·|P|`` rows keeps a key
domain of ``f·d`` values), keeping expected join sizes proportional to
the estimator's predictions.
"""

from __future__ import annotations

from repro.engine.tables import Database, DataTable
from repro.query.joingraph import Query
from repro.util.errors import ValidationError
from repro.util.rng import derive_rng


def edge_column(edge_index: int) -> str:
    """Name of the join-key column for edge ``edge_index``."""
    return f"k{edge_index}"


def scale_factor(query: Query, max_rows: int) -> float:
    """Down-scaling factor so the largest table has ``max_rows`` rows."""
    peak = max(query.cardinalities)
    return 1.0 if peak <= max_rows else max_rows / peak


def scaled_cardinalities(query: Query, max_rows: int) -> list[int]:
    """Scale the catalog cardinalities so the largest is ``max_rows``."""
    factor = scale_factor(query, max_rows)
    return [max(1, round(c * factor)) for c in query.cardinalities]


def generate_database(
    query: Query,
    seed: int = 0,
    max_rows: int = 1000,
) -> Database:
    """Materialize synthetic tables for ``query``.

    Each table gets one ``rowid`` column plus one join-key column per
    incident edge.  Deterministic in ``seed``.
    """
    if max_rows < 1:
        raise ValidationError(f"max_rows must be >= 1, got {max_rows}")
    graph = query.graph
    sizes = scaled_cardinalities(query, max_rows)

    # Edge -> key-domain size, scaled with the tables.  Domains below 1
    # make every key equal (selectivity 1); clamp at 1.
    factor = scale_factor(query, max_rows)
    domains = [
        max(1, round(factor / edge.selectivity)) for edge in graph.edges
    ]
    incident: list[list[int]] = [[] for _ in range(query.n)]
    for edge_index, edge in enumerate(graph.edges):
        incident[edge.u].append(edge_index)
        incident[edge.v].append(edge_index)

    database = Database()
    for rel in range(query.n):
        rng = derive_rng(seed, "engine-table", rel)
        columns = ["rowid"] + [edge_column(e) for e in incident[rel]]
        rows = []
        for rowid in range(sizes[rel]):
            keys = tuple(
                rng.randrange(domains[e]) for e in incident[rel]
            )
            rows.append((rowid, *keys))
        database.add(
            DataTable(
                name=query.relation_names[rel],
                columns=columns,
                rows=rows,
            )
        )
    return database
