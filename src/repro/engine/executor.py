"""Bottom-up plan execution.

Evaluates a plan tree against a :class:`~repro.engine.tables.Database`
generated for the same query.  Join predicates are derived from the query
graph: every edge crossing the operand split contributes one equi-join
predicate on that edge's key columns; a split with no crossing edge is a
cross product.

Intermediate results carry a *layout* mapping each base relation to the
absolute positions of its columns in the concatenated tuples, so
predicates can be resolved at any depth of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.data import edge_column
from repro.engine.operators import JOIN_IMPLEMENTATIONS
from repro.engine.tables import Database
from repro.plans.nodes import JoinNode, PlanNode, ScanNode
from repro.query.joingraph import Query
from repro.util.bitsets import bits_of
from repro.util.errors import ValidationError


@dataclass
class _Intermediate:
    """Rows plus the column layout of the relations they cover."""

    rows: list[tuple]
    width: int
    layout: dict[int, dict[str, int]]


def execute_plan(
    plan: PlanNode, query: Query, database: Database
) -> list[tuple]:
    """Run ``plan`` over ``database`` and return the result tuples.

    The plan must cover relations of ``query`` only; the database must
    contain one table per covered relation (as produced by
    :func:`repro.engine.data.generate_database`).

    Result columns are returned in *canonical order* — covered relations
    ascending, each relation's columns in table order — regardless of the
    plan's leaf order, so results of different plans for the same query
    are directly comparable (row order still depends on the operators).
    """
    edge_index = {
        (e.u, e.v): i for i, e in enumerate(query.graph.edges)
    }

    def crossing_predicates(
        left: _Intermediate, right: _Intermediate
    ) -> list[tuple[int, int]]:
        predicates = []
        for u in left.layout:
            for v in right.layout:
                key = (u, v) if u < v else (v, u)
                idx = edge_index.get(key)
                if idx is None:
                    continue
                column = edge_column(idx)
                predicates.append(
                    (left.layout[u][column], right.layout[v][column])
                )
        return predicates

    def evaluate(node: PlanNode) -> _Intermediate:
        if isinstance(node, ScanNode):
            name = query.relation_names[node.relation]
            table = database.table(name)
            layout = {
                node.relation: {
                    col: i for i, col in enumerate(table.columns)
                }
            }
            return _Intermediate(
                rows=list(table.rows), width=len(table.columns), layout=layout
            )
        if isinstance(node, JoinNode):
            left = evaluate(node.left)
            right = evaluate(node.right)
            predicates = crossing_predicates(left, right)
            impl = JOIN_IMPLEMENTATIONS[node.method.name]
            rows = impl(left.rows, right.rows, predicates)
            layout = dict(left.layout)
            for rel, cols in right.layout.items():
                layout[rel] = {
                    col: pos + left.width for col, pos in cols.items()
                }
            return _Intermediate(
                rows=rows, width=left.width + right.width, layout=layout
            )
        raise ValidationError(f"cannot execute node {node!r}")

    covered = sorted(bits_of(plan.mask))
    for rel in covered:
        name = query.relation_names[rel]
        if name not in database.tables:
            raise ValidationError(f"database is missing table {name!r}")
    result = evaluate(plan)
    # Remap to canonical column order.
    permutation: list[int] = []
    for rel in covered:
        table = database.table(query.relation_names[rel])
        positions = result.layout[rel]
        permutation.extend(positions[col] for col in table.columns)
    if permutation == list(range(result.width)):
        return result.rows
    return [tuple(row[i] for i in permutation) for row in result.rows]
