"""Join operator implementations.

Each operator consumes two lists of tuples plus the list of equi-join
column index pairs and returns the concatenated matching tuples.  All four
compute exactly the same join — the plan executor picks the one named by
the plan node, and the tests assert multiset equality across operators.

An empty predicate list means cross product; the nested-loop family
handles it directly, the key-based operators fall back to nested loop.
"""

from __future__ import annotations

from repro.util.errors import ValidationError

Predicates = list[tuple[int, int]]
"""Pairs ``(left_col, right_col)`` that must be equal."""


def _keys(row: tuple, cols: list[int]):
    return tuple(row[c] for c in cols)


def nested_loop_join(
    left: list[tuple], right: list[tuple], predicates: Predicates
) -> list[tuple]:
    """Tuple-at-a-time nested loop."""
    out = []
    for lrow in left:
        for rrow in right:
            if all(lrow[lc] == rrow[rc] for lc, rc in predicates):
                out.append(lrow + rrow)
    return out


def block_nested_loop_join(
    left: list[tuple],
    right: list[tuple],
    predicates: Predicates,
    block_size: int = 128,
) -> list[tuple]:
    """Block nested loop: outer consumed in blocks, inner rescanned per
    block.  Same result as plain nested loop, different access pattern."""
    if block_size < 1:
        raise ValidationError(f"block_size must be >= 1, got {block_size}")
    out = []
    for start in range(0, len(left), block_size):
        block = left[start : start + block_size]
        for rrow in right:
            for lrow in block:
                if all(lrow[lc] == rrow[rc] for lc, rc in predicates):
                    out.append(lrow + rrow)
    return out


def hash_join(
    left: list[tuple], right: list[tuple], predicates: Predicates
) -> list[tuple]:
    """Classic build (left) / probe (right) hash join."""
    if not predicates:
        return nested_loop_join(left, right, predicates)
    lcols = [lc for lc, _ in predicates]
    rcols = [rc for _, rc in predicates]
    table: dict[tuple, list[tuple]] = {}
    for lrow in left:
        table.setdefault(_keys(lrow, lcols), []).append(lrow)
    out = []
    for rrow in right:
        for lrow in table.get(_keys(rrow, rcols), ()):
            out.append(lrow + rrow)
    return out


def sort_merge_join(
    left: list[tuple], right: list[tuple], predicates: Predicates
) -> list[tuple]:
    """Sort both inputs on the join keys, merge matching key groups."""
    if not predicates:
        return nested_loop_join(left, right, predicates)
    lcols = [lc for lc, _ in predicates]
    rcols = [rc for _, rc in predicates]
    lsorted = sorted(left, key=lambda r: _keys(r, lcols))
    rsorted = sorted(right, key=lambda r: _keys(r, rcols))
    out = []
    i = j = 0
    while i < len(lsorted) and j < len(rsorted):
        lkey = _keys(lsorted[i], lcols)
        rkey = _keys(rsorted[j], rcols)
        if lkey < rkey:
            i += 1
        elif lkey > rkey:
            j += 1
        else:
            # Gather both key groups and emit their cross product.
            i_end = i
            while i_end < len(lsorted) and _keys(lsorted[i_end], lcols) == lkey:
                i_end += 1
            j_end = j
            while j_end < len(rsorted) and _keys(rsorted[j_end], rcols) == rkey:
                j_end += 1
            for lrow in lsorted[i:i_end]:
                for rrow in rsorted[j:j_end]:
                    out.append(lrow + rrow)
            i, j = i_end, j_end
    return out


JOIN_IMPLEMENTATIONS = {
    "NESTED_LOOP": nested_loop_join,
    "BLOCK_NESTED_LOOP": block_nested_loop_join,
    "HASH": hash_join,
    "SORT_MERGE": sort_merge_join,
}
"""Operator implementations keyed by :class:`repro.plans.JoinMethod` name."""
