"""repro — parallel dynamic-programming query optimization.

A from-scratch reproduction of *"Parallelizing Query Optimization"*
(Han, Kwak, Lee, Lohman, Markl — VLDB 2008): serial bottom-up DP join
enumerators (DPsize, DPsub, DPccp), the skip-vector-array-accelerated
DPsva, and the parallel PDP framework that partitions each DP stratum
across worker threads — with a deterministic simulated-multicore
substrate, plus real thread and multiprocessing backends.

Quick start::

    from repro import OptimizerConfig, Workload, WorkloadSpec, optimize

    query = Workload(WorkloadSpec("star", 12, seed=7))[0]
    result = optimize(
        query, config=OptimizerConfig(algorithm="dpsva", threads=8)
    )
    print(result.summary())
    print(result.sim_report.summary())

Repeated traffic goes through the serving layer (:mod:`repro.service`)
— a fingerprint-keyed plan cache with singleflight deduplication and
deadline degradation::

    from repro import OptimizerService

    with OptimizerService(OptimizerConfig(algorithm="dpsize")) as svc:
        svc.optimize(query)             # cold: runs the DP
        svc.optimize(query).source      # "hit" — microseconds
"""

import warnings

from repro.catalog import Catalog, Column, TableStats, generate_catalog
from repro.config import OptimizerConfig
from repro.cost import (
    CardinalityEstimator,
    CostModel,
    CoutCostModel,
    StandardCostModel,
    plan_cost,
)
from repro.enumerate import (
    DPccp,
    DPsize,
    DPsub,
    ExhaustiveEnumerator,
    OptimizationResult,
)
from repro.faults import FaultInjector, FaultSpec
from repro.heuristics import GOO, IKKBZ, IteratedImprovement, SimulatedAnnealing
from repro.hybrid import HybridOptimizer
from repro.memo import Memo, WorkMeter
from repro.parallel import PDPsize, PDPsub, PDPsva, ParallelDP
from repro.plans import JoinMethod, JoinNode, PlanNode, ScanNode, explain
from repro.query import (
    JoinGraph,
    Query,
    QueryContext,
    Workload,
    WorkloadSpec,
    generate_query,
)
from repro.simx import SimCostParams, SimReport
from repro.sva import DPsva, SkipVectorArray
from repro.trace import (
    NullTracer,
    RecordingTracer,
    TraceEvent,
    Tracer,
)
from repro.util.errors import (
    InjectedFault,
    OptimizationError,
    ReproError,
    ValidationError,
)

__version__ = "1.7.0"


def optimize(
    query,
    algorithm: str | None = None,
    threads: int | None = None,
    cost_model: CostModel | None = None,
    cross_products: bool = False,
    config: OptimizerConfig | None = None,
    **options,
) -> OptimizationResult:
    """Optimize a join query — the library's front door.

    The calling convention is a single validated
    :class:`OptimizerConfig`::

        optimize(query, config=OptimizerConfig(algorithm="dpsva", threads=8))

    The individual keyword arguments remain supported as a compatibility
    shim — they are folded into an ``OptimizerConfig`` via
    :meth:`OptimizerConfig.from_kwargs`, so both paths share one
    validation surface and produce identical results — but the shim is
    **deprecated**: passing any optimizer option without ``config=``
    emits a :class:`DeprecationWarning`.  Build the config object
    instead.

    Args:
        query: A :class:`~repro.query.joingraph.Query` or a prepared
            :class:`~repro.query.context.QueryContext`.
        algorithm: Defaults to ``dpsize``.  One of
            ``dpsize``/``dpsub``/``dpccp``/``dpsva`` (exact DP),
            ``exhaustive`` (brute force, tiny queries), or a heuristic
            (``goo``/``ikkbz``/``iterated_improvement``/
            ``simulated_annealing``).
        threads: If given (and the algorithm is a DP kernel the parallel
            framework supports), run the parallel framework with that many
            workers; extra keyword options (``allocation``, ``backend``,
            ``oversubscription``, ``sim_params``, ``tracer``) configure
            :class:`~repro.parallel.scheduler.ParallelDP`.
        cost_model: Defaults to :class:`StandardCostModel`.
        cross_products: Admit cross-product joins.
        config: A ready-made :class:`OptimizerConfig`.  Mutually exclusive
            with the other keyword options.

    Returns:
        An :class:`~repro.enumerate.base.OptimizationResult`.
    """
    kwargs_used = (
        algorithm is not None
        or threads is not None
        or cost_model is not None
        or cross_products
        or bool(options)
    )
    if config is not None:
        if kwargs_used:
            raise ValidationError(
                "pass either config= or individual optimizer options, "
                "not both"
            )
    else:
        if kwargs_used:
            warnings.warn(
                "passing individual optimizer options to repro.optimize() "
                "is deprecated; build an OptimizerConfig and pass config= "
                "instead (e.g. optimize(query, "
                "config=OptimizerConfig(algorithm=..., threads=...)))",
                DeprecationWarning,
                stacklevel=2,
            )
        config = OptimizerConfig.from_kwargs(
            algorithm=algorithm if algorithm is not None else "dpsize",
            threads=threads,
            cost_model=cost_model,
            cross_products=cross_products,
            **options,
        )
    return _run(query, config)


def optimize_batch(
    requests, config: OptimizerConfig | None = None, *, timeout=None
):
    """Answer a batch of requests through an ephemeral serving tier.

    The module-level twin of
    :meth:`~repro.service.OptimizerService.optimize_batch`: it accepts
    the same inputs (a list of
    :class:`~repro.service.OptimizeRequest` objects, bare queries, or
    prepared contexts), returns the same
    :class:`~repro.service.OptimizeResponse` objects with identical
    provenance fields, and shares one deadline budget across the batch —
    the only difference is that the service (cache, worker pool,
    singleflight) lives exactly as long as the call.  Duplicate members
    are deduplicated: a repeated query optimizes once and the repeats
    are answered with ``source`` ``"hit"``/``"shared"``.

    Args:
        requests: Iterable of requests/queries/contexts.
        config: An :class:`OptimizerConfig`; ``None`` uses the defaults.
        timeout: One shared deadline budget for the whole batch, in
            seconds; ``None`` uses the config's ``request_timeout``.

    Returns:
        ``list[OptimizeResponse]`` in input order.
    """
    with OptimizerService(config) as service:
        return service.optimize_batch(requests, timeout=timeout)


def _run(query, config: OptimizerConfig) -> OptimizationResult:
    """Dispatch a validated config to its (cached) optimizer.

    All per-call derivation is hoisted onto the frozen config: the
    optimizer instance (``config.runner``), the resolved cost model
    (``config.effective_cost_model``), and the dispatch classification
    are each computed once and reused by every call carrying the same
    config object.
    """
    cost_model = config.effective_cost_model
    runner = config.runner
    if config.runner_self_traced:
        # ParallelDP and the stratified serial enumerators emit their own
        # ``optimize`` span and attach the trace to the result.
        return runner.optimize(query, cost_model=cost_model)
    # Brute force and the heuristics have no stratified structure to
    # trace; wrap the whole run in one span so the trace still shows it.
    tracer = config.effective_tracer
    with tracer.span("optimize", algorithm=config.algorithm):
        result = runner.optimize(query, cost_model=cost_model)
    if tracer.enabled:
        result.extras.setdefault("trace", tracer)
    return result


# Imported after optimize/_run are defined: the service calls back into
# _run lazily, so this late import is cycle-free by construction.
from repro.service import (  # noqa: E402
    AsyncOptimizerService,
    CacheStats,
    OptimizeRequest,
    OptimizeResponse,
    OptimizerService,
    PlanCache,
    QueryFingerprint,
    ServiceResult,
    ServiceStats,
    ShardedPlanCache,
    fingerprint_query,
)

__all__ = [
    "__version__",
    "optimize",
    "optimize_batch",
    "OptimizerConfig",
    # serving layer
    "AsyncOptimizerService",
    "OptimizerService",
    "OptimizeRequest",
    "OptimizeResponse",
    "ServiceResult",
    "ServiceStats",
    "PlanCache",
    "ShardedPlanCache",
    "CacheStats",
    "QueryFingerprint",
    "fingerprint_query",
    # observability
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "TraceEvent",
    # queries & catalogs
    "Catalog",
    "Column",
    "TableStats",
    "generate_catalog",
    "JoinGraph",
    "Query",
    "QueryContext",
    "Workload",
    "WorkloadSpec",
    "generate_query",
    # cost
    "CardinalityEstimator",
    "CostModel",
    "StandardCostModel",
    "CoutCostModel",
    "plan_cost",
    # plans
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "JoinMethod",
    "explain",
    # memo
    "Memo",
    "WorkMeter",
    # serial enumerators
    "DPsize",
    "DPsub",
    "DPccp",
    "DPsva",
    "ExhaustiveEnumerator",
    "SkipVectorArray",
    "OptimizationResult",
    # parallel framework
    "ParallelDP",
    "PDPsize",
    "PDPsub",
    "PDPsva",
    "SimCostParams",
    "SimReport",
    # heuristics + hybrid
    "GOO",
    "IKKBZ",
    "IteratedImprovement",
    "SimulatedAnnealing",
    "HybridOptimizer",
    # fault injection
    "FaultInjector",
    "FaultSpec",
    # errors
    "ReproError",
    "ValidationError",
    "OptimizationError",
    "InjectedFault",
]
