"""repro — parallel dynamic-programming query optimization.

A from-scratch reproduction of *"Parallelizing Query Optimization"*
(Han, Kwak, Lee, Lohman, Markl — VLDB 2008): serial bottom-up DP join
enumerators (DPsize, DPsub, DPccp), the skip-vector-array-accelerated
DPsva, and the parallel PDP framework that partitions each DP stratum
across worker threads — with a deterministic simulated-multicore
substrate, plus real thread and multiprocessing backends.

Quick start::

    from repro import Workload, WorkloadSpec, optimize

    query = Workload(WorkloadSpec("star", 12, seed=7))[0]
    result = optimize(query, algorithm="dpsva", threads=8)
    print(result.summary())
    print(result.extras["sim_report"].summary())
"""

from repro.catalog import Catalog, Column, TableStats, generate_catalog
from repro.cost import (
    CardinalityEstimator,
    CostModel,
    CoutCostModel,
    StandardCostModel,
    plan_cost,
)
from repro.enumerate import (
    DPccp,
    DPsize,
    DPsub,
    ExhaustiveEnumerator,
    OptimizationResult,
)
from repro.heuristics import GOO, IKKBZ, IteratedImprovement, SimulatedAnnealing
from repro.memo import Memo, WorkMeter
from repro.parallel import PDPsize, PDPsub, PDPsva, ParallelDP
from repro.plans import JoinMethod, JoinNode, PlanNode, ScanNode, explain
from repro.query import (
    JoinGraph,
    Query,
    QueryContext,
    Workload,
    WorkloadSpec,
    generate_query,
)
from repro.simx import SimCostParams, SimReport
from repro.sva import DPsva, SkipVectorArray
from repro.util.errors import OptimizationError, ReproError, ValidationError

__version__ = "1.0.0"

_SERIAL = {
    "dpsize": DPsize,
    "dpsub": DPsub,
    "dpccp": DPccp,
    "dpsva": DPsva,
    "exhaustive": ExhaustiveEnumerator,
}

_HEURISTIC = {
    "goo": GOO,
    "ikkbz": IKKBZ,
    "iterated_improvement": IteratedImprovement,
    "simulated_annealing": SimulatedAnnealing,
}


def optimize(
    query,
    algorithm: str = "dpsize",
    threads: int | None = None,
    cost_model: CostModel | None = None,
    cross_products: bool = False,
    **parallel_options,
) -> OptimizationResult:
    """Optimize a join query — the library's front door.

    Args:
        query: A :class:`~repro.query.joingraph.Query` or a prepared
            :class:`~repro.query.context.QueryContext`.
        algorithm: ``dpsize``/``dpsub``/``dpccp``/``dpsva`` (exact DP),
            ``exhaustive`` (brute force, tiny queries), or a heuristic
            (``goo``/``ikkbz``/``iterated_improvement``/
            ``simulated_annealing``).
        threads: If given (and the algorithm is a DP kernel the parallel
            framework supports), run the parallel framework with that many
            workers; extra keyword options (``allocation``, ``backend``,
            ``oversubscription``, ``sim_params``) are forwarded to
            :class:`~repro.parallel.scheduler.ParallelDP`.
        cost_model: Defaults to :class:`StandardCostModel`.
        cross_products: Admit cross-product joins.

    Returns:
        An :class:`~repro.enumerate.base.OptimizationResult`.
    """
    if threads is not None:
        optimizer = ParallelDP(
            algorithm=algorithm,
            threads=threads,
            cross_products=cross_products,
            **parallel_options,
        )
        return optimizer.optimize(query, cost_model=cost_model)
    if parallel_options:
        raise ValidationError(
            f"options {sorted(parallel_options)} require threads= to be set"
        )
    if algorithm in _SERIAL:
        if algorithm == "exhaustive":
            return ExhaustiveEnumerator(cross_products=cross_products).optimize(
                query, cost_model=cost_model
            )
        return _SERIAL[algorithm](cross_products=cross_products).optimize(
            query, cost_model=cost_model
        )
    if algorithm in _HEURISTIC:
        if algorithm == "goo":
            return GOO(cross_products=cross_products).optimize(
                query, cost_model=cost_model
            )
        return _HEURISTIC[algorithm]().optimize(query, cost_model=cost_model)
    raise ValidationError(
        f"unknown algorithm {algorithm!r}; expected one of "
        f"{sorted(_SERIAL) + sorted(_HEURISTIC)}"
    )


__all__ = [
    "__version__",
    "optimize",
    # queries & catalogs
    "Catalog",
    "Column",
    "TableStats",
    "generate_catalog",
    "JoinGraph",
    "Query",
    "QueryContext",
    "Workload",
    "WorkloadSpec",
    "generate_query",
    # cost
    "CardinalityEstimator",
    "CostModel",
    "StandardCostModel",
    "CoutCostModel",
    "plan_cost",
    # plans
    "PlanNode",
    "ScanNode",
    "JoinNode",
    "JoinMethod",
    "explain",
    # memo
    "Memo",
    "WorkMeter",
    # serial enumerators
    "DPsize",
    "DPsub",
    "DPccp",
    "DPsva",
    "ExhaustiveEnumerator",
    "SkipVectorArray",
    "OptimizationResult",
    # parallel framework
    "ParallelDP",
    "PDPsize",
    "PDPsub",
    "PDPsva",
    "SimCostParams",
    "SimReport",
    # heuristics
    "GOO",
    "IKKBZ",
    "IteratedImprovement",
    "SimulatedAnnealing",
    # errors
    "ReproError",
    "ValidationError",
    "OptimizationError",
]
