"""Skip vector arrays and the DPsva enumerator.

The skip vector array (SVA) is the paper's data structure for eliminating
the dominant cost of DPsize: candidate operand pairs that fail the
disjointness test.  Quantifier sets of a stratum are sorted
lexicographically by member list and each position carries a vector of
per-prefix skip pointers; a scan for partners disjoint from an outer set
jumps over entire blocks of sets sharing a conflicting prefix instead of
rejecting them one by one.

DPsva inspects far fewer pairs than DPsize yet returns the identical
optimum:

>>> from repro import OptimizerConfig, optimize
>>> from repro.query import WorkloadSpec, generate_query
>>> query = generate_query(WorkloadSpec("star", 8, seed=5))
>>> sva, size = (optimize(query, config=OptimizerConfig(algorithm=a))
...              for a in ("dpsva", "dpsize"))
>>> sva.cost == size.cost
True
>>> sva.meter.pairs_considered < size.meter.pairs_considered
True
"""

from repro.sva.dpsva import DPsva
from repro.sva.skipvector import SkipVectorArray

__all__ = ["SkipVectorArray", "DPsva"]
