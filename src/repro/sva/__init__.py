"""Skip vector arrays and the DPsva enumerator.

The skip vector array (SVA) is the paper's data structure for eliminating
the dominant cost of DPsize: candidate operand pairs that fail the
disjointness test.  Quantifier sets of a stratum are sorted
lexicographically by member list and each position carries a vector of
per-prefix skip pointers; a scan for partners disjoint from an outer set
jumps over entire blocks of sets sharing a conflicting prefix instead of
rejecting them one by one.
"""

from repro.sva.dpsva import DPsva
from repro.sva.skipvector import SkipVectorArray

__all__ = ["SkipVectorArray", "DPsva"]
