"""The skip vector array data structure.

Entries (quantifier-set bitmasks) are sorted by their ascending member
tuples, so all sets sharing a member prefix are contiguous.  For entry
``i`` and prefix length ``k+1``, ``skip[i][k]`` is the index of the first
later entry whose first ``k+1`` members differ from entry ``i``'s — the end
of the prefix block.

A disjointness scan against an outer set ``S`` walks the array; on a
conflict it locates the first member of the current entry that lies in
``S`` (say at prefix position ``k``) and jumps to ``skip[i][k]``: every
entry in between shares that member, hence also conflicts.  The scan
therefore touches each *valid* partner once and each *block* of invalid
partners once, instead of each invalid partner once — this is the whole
effect the paper's E2-style tables quantify.
"""

from __future__ import annotations

from repro.memo.counters import WorkMeter
from repro.util.bitsets import members


class SkipVectorArray:
    """Immutable skip-vector index over one stratum of quantifier sets."""

    __slots__ = ("masks", "member_lists", "skip", "set_size")

    def __init__(self, masks, meter: WorkMeter | None = None) -> None:
        """Build the array over ``masks`` (bitmasks of equal popcount).

        Build cost — sorting plus one pass per prefix depth — is metered as
        ``sva_build_ops`` when a meter is supplied.
        """
        pairs = sorted((tuple(members(m)), m) for m in masks)
        self.member_lists: list[tuple[int, ...]] = [p[0] for p in pairs]
        self.masks: list[int] = [p[1] for p in pairs]
        count = len(self.masks)
        self.set_size = len(self.member_lists[0]) if count else 0
        for mlist in self.member_lists:
            if len(mlist) != self.set_size:
                raise ValueError("all SVA entries must have equal cardinality")
        # skip[i][k]: end of the block around i sharing member prefix of
        # length k+1.  Built per depth with a single backward scan.
        skip = [[count] * self.set_size for _ in range(count)]
        for depth in range(self.set_size):
            block_end = count
            for i in range(count - 1, -1, -1):
                if (
                    i + 1 < count
                    and self.member_lists[i][: depth + 1]
                    != self.member_lists[i + 1][: depth + 1]
                ):
                    block_end = i + 1
                skip[i][depth] = block_end
        self.skip = skip
        if meter is not None:
            meter.sva_build_ops += count * max(1, self.set_size)

    def __len__(self) -> int:
        return len(self.masks)

    def disjoint_partners(self, outer: int, meter: WorkMeter) -> list[int]:
        """All entry masks disjoint from ``outer``, via skip-pointer scan.

        Metering: ``sva_steps`` counts scan positions visited (valid
        partners plus one position per conflicting block), ``sva_skips``
        counts jumps taken, ``sva_skipped_entries`` the entries jumped
        over without inspection.
        """
        out: list[int] = []
        masks = self.masks
        member_lists = self.member_lists
        skip = self.skip
        count = len(masks)
        i = 0
        while i < count:
            meter.sva_steps += 1
            mask = masks[i]
            if mask & outer == 0:
                out.append(mask)
                i += 1
                continue
            # First prefix position whose member collides with the outer set.
            mlist = member_lists[i]
            depth = 0
            while not (outer >> mlist[depth]) & 1:
                depth += 1
            target = skip[i][depth]
            meter.sva_skips += 1
            meter.sva_skipped_entries += target - i - 1
            i = target
        return out

    def disjoint_partners_counted(self, outer: int) -> tuple[list[int], int]:
        """Meter-free scan: ``(partners, jumps)`` for the fast path.

        The fused DPsva kernel recovers the exact reference meter counts
        from the return value alone: positions visited is
        ``len(partners) + jumps`` and entries jumped over is
        ``len(self) - len(partners) - jumps`` (every entry is either a
        valid partner, a jump origin, or skipped).
        """
        out: list[int] = []
        masks = self.masks
        member_lists = self.member_lists
        skip = self.skip
        count = len(masks)
        jumps = 0
        i = 0
        while i < count:
            mask = masks[i]
            if mask & outer == 0:
                out.append(mask)
                i += 1
                continue
            mlist = member_lists[i]
            depth = 0
            while not (outer >> mlist[depth]) & 1:
                depth += 1
            jumps += 1
            i = skip[i][depth]
        return out, jumps

    def scan_all(self) -> list[int]:
        """All entry masks in SVA order (no skipping)."""
        return list(self.masks)
