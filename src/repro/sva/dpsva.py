"""DPsva: DPsize accelerated with skip vector arrays.

Identical stratum structure to :class:`~repro.enumerate.dpsize.DPsize`;
the inner scan over partner sets goes through a
:class:`~repro.sva.skipvector.SkipVectorArray` so non-disjoint pairs are
skipped in blocks.  One SVA is built per completed stratum and shared by
every split (and, in the parallel variant, by every worker), matching the
paper's shared read-only index.
"""

from __future__ import annotations

from repro.enumerate.base import Enumerator
from repro.memo.counters import WorkMeter
from repro.memo.table import Memo
from repro.query.context import QueryContext
from repro.sva.skipvector import SkipVectorArray
from repro.trace.metrics import stratum_scope


class SvaCache:
    """Lazily built skip vector arrays, one per stratum size."""

    def __init__(self, memo: Memo, meter: WorkMeter) -> None:
        self._memo = memo
        self._meter = meter
        self._arrays: dict[int, SkipVectorArray] = {}

    def for_size(self, size: int) -> SkipVectorArray:
        """SVA over the memoized sets of ``size`` (built on first use).

        Must only be called for strata that are already complete.
        """
        array = self._arrays.get(size)
        if array is None:
            array = SkipVectorArray(
                self._memo.sets_of_size(size), meter=self._meter
            )
            self._arrays[size] = array
        return array

    def invalidate(self, size: int) -> None:
        """Drop a cached stratum (unused in normal bottom-up operation)."""
        self._arrays.pop(size, None)


def dpsva_pair_kernel(
    memo: Memo,
    ctx: QueryContext,
    outer_sets: list[int],
    inner_sva: SkipVectorArray,
    outer_start: int,
    outer_stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """DPsva inner loop over one block of outer sets.

    The SVA scan returns only disjoint partners, so the disjointness
    rejection disappears; the connectivity test (when cross products are
    disabled) remains per surviving pair, as in the paper.
    """
    connects = ctx.connects
    consider = memo.consider_join
    for i in range(outer_start, outer_stop):
        outer = outer_sets[i]
        for inner in inner_sva.disjoint_partners(outer, meter):
            meter.pairs_considered += 1
            if require_connected:
                meter.conn_checks += 1
                if not connects(outer, inner):
                    meter.connectivity_fail += 1
                    continue
            meter.pairs_valid += 1
            consider(outer, inner, meter)


def dpsva_pair_kernel_fast(
    memo: Memo,
    ctx: QueryContext,
    outer_sets: list[int],
    inner_sva: SkipVectorArray,
    outer_start: int,
    outer_stop: int,
    require_connected: bool,
    meter: WorkMeter,
) -> None:
    """Fused DPsva inner loop; parity-equal to :func:`dpsva_pair_kernel`.

    Uses the meter-free :meth:`SkipVectorArray.disjoint_partners_counted`
    scan and recovers the exact reference SVA counts from ``(partners,
    jumps, len(sva))``; connectivity filtering and candidate costing are
    fused as in the DPsize fast kernel.
    """
    adj_union = ctx.adj_union
    consider_joins = memo.consider_joins
    disjoint_partners_counted = inner_sva.disjoint_partners_counted
    sva_count = len(inner_sva)
    steps_local = 0
    skips_local = 0
    skipped_local = 0
    pairs_local = 0
    conn_checks_local = 0
    conn_fail_local = 0
    valid_local = 0
    for i in range(outer_start, outer_stop):
        outer = outer_sets[i]
        partners, jumps = disjoint_partners_counted(outer)
        found = len(partners)
        steps_local += found + jumps
        skips_local += jumps
        skipped_local += sva_count - found - jumps
        pairs_local += found
        if require_connected:
            conn_checks_local += found
            nbr = adj_union(outer)
            valid = [inner for inner in partners if nbr & inner]
            conn_fail_local += found - len(valid)
        else:
            valid = partners
        valid_local += len(valid)
        consider_joins(outer, valid, meter)
    meter.sva_steps += steps_local
    meter.sva_skips += skips_local
    meter.sva_skipped_entries += skipped_local
    meter.pairs_considered += pairs_local
    meter.conn_checks += conn_checks_local
    meter.connectivity_fail += conn_fail_local
    meter.pairs_valid += valid_local


class DPsva(Enumerator):
    """Serial DPsva."""

    name = "dpsva"

    def populate(self, memo: Memo) -> None:
        ctx = memo.ctx
        meter = memo.meter
        tracer = self.tracer
        require_connected = not self.cross_products
        cache = SvaCache(memo, meter)
        kernel = dpsva_pair_kernel_fast if self.fast_path else dpsva_pair_kernel
        for size in range(2, ctx.n + 1):
            with stratum_scope(tracer, meter, size, algorithm=self.name):
                for outer_size in range(1, size):
                    inner_size = size - outer_size
                    outer_sets = memo.sets_of_size(outer_size)
                    if not outer_sets:
                        continue
                    inner_sva = cache.for_size(inner_size)
                    kernel(
                        memo,
                        ctx,
                        outer_sets,
                        inner_sva,
                        0,
                        len(outer_sets),
                        require_connected,
                        meter,
                    )
